package core

import (
	"bytes"
	"strings"
	"testing"

	"canec/internal/obs"
	"canec/internal/sim"
)

// observedSystem is idealSystem with the observability layer enabled.
func observedSystem(t *testing.T, nodes int, cfg SystemConfig) *System {
	t.Helper()
	cfg.Nodes = nodes
	cfg.Seed = 1
	cfg.Observe = obs.Default()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// chainOf extracts the stage sequence of one trace ID, asserting
// non-decreasing timestamps along the way.
func chainOf(t *testing.T, recs []obs.Record, id uint64) []obs.Stage {
	t.Helper()
	var stages []obs.Stage
	var prev sim.Time
	for _, r := range recs {
		if r.ID != id {
			continue
		}
		if r.At < prev {
			t.Errorf("trace %d: timestamp decreases at %q: %d < %d", id, r.Stage, r.At, prev)
		}
		prev = r.At
		stages = append(stages, r.Stage)
	}
	return stages
}

func hasStage(stages []obs.Stage, s obs.Stage) bool {
	for _, st := range stages {
		if st == s {
			return true
		}
	}
	return false
}

func TestObservedSRTLifecycle(t *testing.T) {
	sys := observedSystem(t, 2, SystemConfig{})
	pub, err := sys.Node(0).MW.SRTEC(subjDiag)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.Node(1).MW.SRTEC(subjDiag)
	if err != nil {
		t.Fatal(err)
	}
	var got []DeliveryInfo
	err = sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{},
		func(_ Event, di DeliveryInfo) { got = append(got, di) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.K.At(1*sim.Millisecond, func() {
		if err := pub.Publish(Event{Subject: subjDiag, Payload: []byte{1, 2}}); err != nil {
			t.Error(err)
		}
	})
	sys.Run(10 * sim.Millisecond)

	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	if got[0].PublishedAt != 1*sim.Millisecond {
		t.Errorf("DeliveryInfo.PublishedAt = %v, want 1ms", got[0].PublishedAt)
	}

	recs := sys.Obs.Records()
	var id uint64
	for _, r := range recs {
		if r.Stage == obs.StagePublished {
			id = r.ID
			break
		}
	}
	if id == 0 {
		t.Fatal("no published record found")
	}
	stages := chainOf(t, recs, id)
	for _, want := range []obs.Stage{
		obs.StagePublished, obs.StageEnqueued, obs.StageTxStart,
		obs.StageTxOK, obs.StageRx, obs.StageDelivered,
	} {
		if !hasStage(stages, want) {
			t.Errorf("chain missing stage %q: %v", want, stages)
		}
	}

	// The bus-level records must carry the resolved subject.
	for _, r := range recs {
		if r.ID == id && r.Stage == obs.StageTxOK && r.Subject != uint64(subjDiag) {
			t.Errorf("tx_ok subject = %#x, want %#x", r.Subject, uint64(subjDiag))
		}
	}

	var buf bytes.Buffer
	if err := sys.Obs.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`canec_events_published_total{class="SRT"} 1`,
		`canec_events_delivered_total{class="SRT"} 1`,
		`canec_e2e_latency_microseconds_count{class="SRT",subject="0x2001"} 1`,
		`canec_band_busy_ns_total{band="srt"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestObservedHRTLifecycle(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := observedSystem(t, 2, SystemConfig{Calendar: cal, Epoch: 1 * sim.Millisecond})
	pub, err := sys.Node(0).MW.HRTEC(subjTemp)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.Node(1).MW.HRTEC(subjTemp)
	if err != nil {
		t.Fatal(err)
	}
	var got []DeliveryInfo
	err = sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(_ Event, di DeliveryInfo) { got = append(got, di) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 3; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			if err := pub.Publish(Event{Subject: subjTemp, Payload: []byte{9}}); err != nil {
				t.Error(err)
			}
		})
	}
	sys.Run(sys.Cfg.Epoch + 3*cal.Round + cal.Round/2)

	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(got))
	}
	for i, di := range got {
		if di.PublishedAt == 0 || di.PublishedAt >= di.DeliveredAt {
			t.Errorf("delivery %d: PublishedAt %v not before DeliveredAt %v",
				i, di.PublishedAt, di.DeliveredAt)
		}
	}

	// Every delivered HRT event has the complete published→delivered chain.
	recs := sys.Obs.Records()
	delivered := 0
	for _, r := range recs {
		if r.Stage != obs.StageDelivered {
			continue
		}
		delivered++
		stages := chainOf(t, recs, r.ID)
		for _, want := range []obs.Stage{
			obs.StagePublished, obs.StageEnqueued, obs.StageTxStart,
			obs.StageTxOK, obs.StageRx, obs.StageDelivered,
		} {
			if !hasStage(stages, want) {
				t.Errorf("trace %d missing stage %q: %v", r.ID, want, stages)
			}
		}
	}
	if delivered != 3 {
		t.Errorf("delivered records = %d, want 3", delivered)
	}

	var buf bytes.Buffer
	if err := sys.Obs.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`canec_hrt_slots_total{outcome="fired"} 3`,
		`canec_band_busy_ns_total{band="hrt"}`,
		`canec_queue_depth{node="0",queue="hrt"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestObserveDisabledCarriesNoObserver(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	if sys.Obs != nil {
		t.Fatal("observer present without Observe config")
	}
	if sys.Obs.Records() != nil || sys.Obs.Registry() != nil {
		t.Fatal("nil observer leaked components")
	}
	if sys.Bus.TraceArbitration {
		t.Fatal("arbitration tracing enabled without observer")
	}
}
