package core

import (
	"fmt"

	"canec/internal/calendar"
	"canec/internal/obs"
	"canec/internal/prob"
	"canec/internal/sim"
)

// ReservedFromCalendar converts the HRT slot calendar into the reserved
// message streams every probabilistic admission analysis must account
// for: each slot is a periodic stream at HRT priority (it always wins
// arbitration against SRT/NRT traffic) with the slot's dimensioned
// payload and period.
func ReservedFromCalendar(cal *calendar.Calendar) []prob.Msg {
	msgs := make([]prob.Msg, 0, len(cal.Slots))
	for _, s := range cal.Slots {
		msgs = append(msgs, prob.Msg{
			Name:    fmt.Sprintf("hrt-slot-%d", s.Subject),
			Prio:    0,
			Period:  s.Period(cal.Round),
			Payload: s.Payload,
		})
	}
	return msgs
}

// AdmissionError is the typed rejection returned by Announce when the
// probabilistic admission controller refuses the channel. It carries
// everything the application needs to react: the reason, the predicted
// miss probability against the class target, and the re-admission
// backoff after which a retry may succeed.
type AdmissionError struct {
	Reason     prob.Reason
	MissProb   float64
	Target     float64
	RetryAfter sim.Duration
}

// Error implements error.
func (e *AdmissionError) Error() string {
	if e.Reason == prob.ReasonBackoff {
		return fmt.Sprintf("core: admission refused (%s, retry after %v)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("core: admission refused (%s: predicted miss %.3g, target %.3g, retry after %v)",
		e.Reason, e.MissProb, e.Target, e.RetryAfter)
}

// admissionRequest consults the segment's admission controller for an
// SRT/NRT announcement. It returns nil when the channel is admitted (or
// no controller is installed) and a typed *AdmissionError otherwise.
func (mw *Middleware) admissionRequest(ch *channelState, attrs ChannelAttrs) error {
	ctl := mw.Admission
	if ctl == nil {
		return nil
	}
	req := prob.ChannelReq{
		Node:     mw.node.Index,
		Subject:  uint64(ch.subject),
		Class:    ch.class.String(),
		Prio:     attrs.Prio,
		Payload:  attrs.Payload,
		Period:   attrs.Period,
		Deadline: attrs.RelDeadline,
	}
	d := ctl.Request(req)
	now := mw.K.Now()
	if d.Admitted {
		mw.counters.AdmissionAdmitted++
		mw.Obs.AdmissionDecision(req.Class, "admitted", prob.ReasonNone.String())
		mw.Obs.Emit(0, obs.StageAdmitted, req.Class, req.Node, req.Subject, now,
			fmt.Sprintf("miss %.3g target %.3g", d.MissProb, d.Target))
		return nil
	}
	mw.counters.AdmissionRejected++
	mw.Obs.AdmissionDecision(req.Class, "rejected", d.Reason.String())
	mw.Obs.Emit(0, obs.StageAdmitRejected, req.Class, req.Node, req.Subject, now,
		fmt.Sprintf("%s miss %.3g target %.3g retry %v", d.Reason, d.MissProb, d.Target, d.RetryAfter))
	return &AdmissionError{Reason: d.Reason, MissProb: d.MissProb,
		Target: d.Target, RetryAfter: d.RetryAfter}
}

// admissionRelease returns a channel's bandwidth claim to the controller
// when its publication is cancelled.
func (mw *Middleware) admissionRelease(ch *channelState) {
	if mw.Admission != nil {
		mw.Admission.Release(mw.node.Index, uint64(ch.subject))
	}
}

// applyAdmissionShed withdraws a shed channel's announcement: queued
// events are aborted, further publishes fail with ErrNotAnnounced until
// the application re-announces (which re-runs admission under the armed
// backoff), and the publisher's exception handler is notified with the
// typed reason — never a silent degradation.
func (mw *Middleware) applyAdmissionShed(s prob.Shed) {
	for _, ch := range mw.channels {
		if uint64(ch.subject) != s.Channel.Subject || !ch.announced {
			continue
		}
		switch ch.class {
		case SRT:
			for e := range ch.srtActive {
				if !e.done {
					mw.node.Ctrl.Abort(e.handle)
					e.done = true
				}
			}
			ch.srtActive = make(map[*srtEntry]bool)
		case NRT:
			ch.nrtQueue = nil
		default:
			continue // HRT channels are never admission-managed
		}
		ch.announced = false
		now := mw.K.Now()
		mw.Obs.AdmissionDecision(ch.class.String(), "shed", s.Reason.String())
		mw.Obs.Emit(0, obs.StageAdmitShed, ch.class.String(), mw.node.Index,
			uint64(ch.subject), now,
			fmt.Sprintf("%s miss %.3g target %.3g", s.Reason, s.MissProb, s.Target))
		ch.raisePub(Exception{Kind: ExcAdmissionShed, Subject: ch.subject, At: now,
			Detail: fmt.Sprintf("predicted miss %.3g above target %.3g under measured error rate",
				s.MissProb, s.Target)})
	}
}

// reviseAdmission recomputes the measured per-attempt error rate from
// the bus statistics and re-evaluates the admitted set, applying any
// sheds to the owning nodes. It runs on error-state transitions
// (error-passive, bus-off) and guardian isolation — the trace events
// that signal the wire no longer behaves like the planned error model.
func (s *System) reviseAdmission() {
	if s.Admission == nil {
		return
	}
	st := s.Bus.Stats()
	attempts := st.FramesOK + st.FramesError
	if attempts == 0 {
		return
	}
	rate := float64(st.FramesError) / float64(attempts)
	for _, shed := range s.Admission.SetMeasuredRate(rate) {
		if shed.Channel.Node >= 0 && shed.Channel.Node < len(s.Nodes) {
			s.Nodes[shed.Channel.Node].MW.applyAdmissionShed(shed)
		}
	}
}
