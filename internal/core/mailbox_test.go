package core

import (
	"testing"

	"canec/internal/sim"
)

func TestGetEventMailbox(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	// The paper's style: the notification handler is a pure signal and the
	// application fetches the event from middleware memory.
	notified := 0
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { notified++ }, nil)
	if _, _, ok := sub.GetEvent(); ok {
		t.Fatal("mailbox filled before any delivery")
	}
	for r := int64(0); r < 3; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(10 + r)}})
		})
	}
	sys.Run(sys.Cfg.Epoch + 3*cal.Round - 1)
	if notified != 3 {
		t.Fatalf("notified = %d", notified)
	}
	ev, di, ok := sub.GetEvent()
	if !ok || ev.Payload[0] != 12 {
		t.Fatalf("mailbox = %v %v %v, want latest event 12", ev, di, ok)
	}
	if di.DeliveredAt == 0 || di.Publisher != 0 {
		t.Fatalf("mailbox delivery info = %+v", di)
	}
}

func TestGetEventSRTAndNRT(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	srtP, _ := sys.Node(0).MW.SRTEC(subjDiag)
	srtP.Announce(ChannelAttrs{}, nil)
	srtS, _ := sys.Node(1).MW.SRTEC(subjDiag)
	srtS.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, nil, nil) // mailbox-only subscriber
	nrtP, _ := sys.Node(0).MW.NRTEC(subjBulk)
	nrtP.Announce(ChannelAttrs{Prio: 255, Fragmentation: true}, nil)
	nrtS, _ := sys.Node(1).MW.NRTEC(subjBulk)
	nrtS.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{}, nil, nil)
	sys.K.At(sim.Millisecond, func() {
		srtP.Publish(Event{Subject: subjDiag, Payload: []byte{0x5A}})
		nrtP.Publish(Event{Subject: subjBulk, Payload: make([]byte, 50)})
	})
	sys.Run(100 * sim.Millisecond)
	if ev, _, ok := srtS.GetEvent(); !ok || ev.Payload[0] != 0x5A {
		t.Fatalf("SRT mailbox = %v %v", ev, ok)
	}
	if ev, _, ok := nrtS.GetEvent(); !ok || len(ev.Payload) != 50 {
		t.Fatalf("NRT mailbox = %v %v", ev, ok)
	}
}

func TestQueueCapConfigurable(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	overflow := 0
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true, QueueCap: 2},
		func(e Exception) {
			if e.Kind == ExcQueueOverflow {
				overflow++
			}
		})
	for i := 0; i < 3; i++ {
		pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(i)}})
	}
	if overflow != 1 {
		t.Fatalf("overflow = %d with cap 2 and 3 publishes", overflow)
	}
}
