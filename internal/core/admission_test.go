package core

import (
	"errors"
	"testing"

	"canec/internal/can"
	"canec/internal/prob"
	"canec/internal/sim"
)

// admissionConfig builds a standard SRT-controlled admission setup with
// the given planned per-attempt error rate.
func admissionConfig(targetSRT, plannedRate float64) *prob.AdmissionConfig {
	return &prob.AdmissionConfig{
		Targets:  prob.ClassTargets{SRT: targetSRT},
		Analyzer: prob.Analyzer{Model: prob.ErrorModel{ErrorRate: plannedRate}},
	}
}

// TestAdmissionAnnounceGate pins the announce-time behaviour: channels
// within the target are admitted, channels whose declared deadline
// cannot hold the target miss probability are refused with the typed
// *AdmissionError, and undeclared rates are refused outright.
func TestAdmissionAnnounceGate(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Nodes: 3, Seed: 1,
		Admission: admissionConfig(0.05, 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := sys.Node(0).MW.SRTEC(subjDiag)
	if err := ok.Announce(ChannelAttrs{Period: 5 * sim.Millisecond,
		RelDeadline: 3 * sim.Millisecond}, nil); err != nil {
		t.Fatalf("generous channel refused: %v", err)
	}

	tight, _ := sys.Node(1).MW.SRTEC(subjOther)
	err = tight.Announce(ChannelAttrs{Period: 5 * sim.Millisecond,
		RelDeadline: 100 * sim.Microsecond}, nil)
	var admErr *AdmissionError
	if !errors.As(err, &admErr) {
		t.Fatalf("tight channel: %v, want *AdmissionError", err)
	}
	if admErr.Reason != prob.ReasonMissProb {
		t.Fatalf("reason %v, want %v", admErr.Reason, prob.ReasonMissProb)
	}
	if admErr.RetryAfter <= 0 || admErr.MissProb <= admErr.Target {
		t.Fatalf("rejection detail %+v", admErr)
	}
	// The refused channel never became announced: publishing fails.
	if err := tight.Publish(Event{Subject: subjOther, Payload: []byte{1}}); !errors.Is(err, ErrNotAnnounced) {
		t.Fatalf("publish on refused channel: %v", err)
	}

	undeclared, _ := sys.Node(2).MW.SRTEC(subjBulk)
	err = undeclared.Announce(ChannelAttrs{}, nil)
	if !errors.As(err, &admErr) || admErr.Reason != prob.ReasonUndeclared {
		t.Fatalf("undeclared channel: %v", err)
	}

	c := sys.TotalCounters()
	if c.AdmissionAdmitted != 1 || c.AdmissionRejected != 2 {
		t.Fatalf("counters admitted=%d rejected=%d", c.AdmissionAdmitted, c.AdmissionRejected)
	}
	// Cancelling returns the claim to the controller.
	ok.CancelPublication()
	if n := len(sys.Admission.Snapshot().Admitted); n != 0 {
		t.Fatalf("admitted set after cancel: %d", n)
	}
}

// TestAdmissionNRTUncontrolled: without an NRT target the class is
// admitted unconditionally but still tracked as interference.
func TestAdmissionNRTUncontrolled(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Nodes: 2, Seed: 1,
		Admission: admissionConfig(0.05, 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	nrt, _ := sys.Node(0).MW.NRTEC(subjBulk)
	if err := nrt.Announce(ChannelAttrs{Prio: 252, Period: sim.Millisecond,
		RelDeadline: 200 * sim.Microsecond}, nil); err != nil {
		t.Fatalf("uncontrolled NRT refused: %v", err)
	}
	if n := len(sys.Admission.Snapshot().Admitted); n != 1 {
		t.Fatalf("NRT channel not tracked: %d", n)
	}
}

// TestReservedFromCalendar: HRT slots become reserved priority-0
// interference streams with the slot's period and payload.
func TestReservedFromCalendar(t *testing.T) {
	cal := testCalendar(t, 1)
	res := ReservedFromCalendar(cal)
	if len(res) != len(cal.Slots) {
		t.Fatalf("reserved %d, slots %d", len(res), len(cal.Slots))
	}
	for i, m := range res {
		if m.Prio != 0 || m.Period != cal.Slots[i].Period(cal.Round) || m.Payload != cal.Slots[i].Payload {
			t.Fatalf("reserved[%d] = %+v for slot %+v", i, m, cal.Slots[i])
		}
	}
}

// TestAdmissionShedOnErrorState drives the full loop through the bus:
// two channels are admitted under a low planned error rate, sustained
// injected bit errors push a controller into error-passive, the
// error-state hook re-measures the wire rate and the marginal channel —
// and only it — is shed with the typed exception, while the robust
// channel keeps publishing. No silent degradation: the shed publisher's
// next Publish fails loudly with ErrNotAnnounced.
func TestAdmissionShedOnErrorState(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Nodes: 3, Seed: 5,
		ConfineFaults: true,
		Injector:      can.RandomErrors{Rate: 0.4},
		Admission:     admissionConfig(0.02, 0.02),
	})
	if err != nil {
		t.Fatal(err)
	}
	var shedExc []Exception
	robust, _ := sys.Node(0).MW.SRTEC(subjDiag)
	if err := robust.Announce(ChannelAttrs{Period: 4 * sim.Millisecond,
		RelDeadline: 3500 * sim.Microsecond}, nil); err != nil {
		t.Fatalf("robust channel refused: %v", err)
	}
	// Marginal: with one interfering SRT transmission ahead (the robust
	// channel), the 600µs deadline tolerates exactly one error frame
	// across the busy window — a sub-percent miss at the planned 2%,
	// hopeless once the wire measures anywhere near the injected 40%.
	marginal, _ := sys.Node(1).MW.SRTEC(subjOther)
	if err := marginal.Announce(ChannelAttrs{Period: 4 * sim.Millisecond,
		RelDeadline: 600 * sim.Microsecond}, func(e Exception) {
		if e.Kind == ExcAdmissionShed {
			shedExc = append(shedExc, e)
		}
	}); err != nil {
		t.Fatalf("marginal channel refused under planned rate: %v", err)
	}

	var robustErrs, marginalRejected int
	for i := int64(0); i < 250; i++ {
		at := sim.Time(i) * sim.Time(4*sim.Millisecond)
		sys.K.At(at, func() {
			now := sys.Node(0).MW.LocalTime()
			if err := robust.Publish(Event{Subject: subjDiag, Payload: []byte{1},
				Attrs: EventAttrs{Deadline: now + 3500*sim.Microsecond}}); err != nil {
				robustErrs++
			}
			now = sys.Node(1).MW.LocalTime()
			if err := marginal.Publish(Event{Subject: subjOther, Payload: []byte{2},
				Attrs: EventAttrs{Deadline: now + 600*sim.Microsecond}}); errors.Is(err, ErrNotAnnounced) {
				marginalRejected++
			}
		})
	}
	sys.Run(sim.Time(1100 * sim.Millisecond))

	if len(shedExc) != 1 {
		t.Fatalf("AdmissionShed exceptions = %d, want exactly 1", len(shedExc))
	}
	if shedExc[0].Subject != subjOther {
		t.Fatalf("shed subject %v, want %v", shedExc[0].Subject, subjOther)
	}
	if marginalRejected == 0 {
		t.Fatal("shed channel still accepted publishes")
	}
	if robustErrs != 0 {
		t.Fatalf("robust channel saw %d publish errors", robustErrs)
	}
	c := sys.TotalCounters()
	if c.AdmissionShed != 1 {
		t.Fatalf("AdmissionShed counter = %d", c.AdmissionShed)
	}
	snap := sys.Admission.Snapshot()
	if snap.MeasuredRate < 0.15 {
		t.Fatalf("measured rate %v never reflected the injected faults", snap.MeasuredRate)
	}
	// The robust channel survived and still meets its target under the
	// measured rate.
	if len(snap.Admitted) != 1 || snap.Admitted[0].Channel.Subject != uint64(subjDiag) {
		t.Fatalf("survivors %+v", snap.Admitted)
	}
	if snap.Admitted[0].MissProb > 0.02 {
		t.Fatalf("survivor predicted miss %v above target", snap.Admitted[0].MissProb)
	}
}
