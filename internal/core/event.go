// Package core implements the paper's event channel middleware: the
// publisher/subscriber programming model of §2 (events, event channels,
// notification and exception handlers) and the mapping of the three
// channel classes — hard real-time (HRTEC), soft real-time (SRTEC) and
// non real-time (NRTEC) — onto the CAN-Bus mechanisms described in §3.
//
// Every node runs a Middleware instance that owns the node's CAN
// controller, its synchronized local clock, the binding table and the
// per-channel state. All channel operations mirror the paper's API
// (Fig. 1 and Fig. 2): Announce, Publish, Subscribe, CancelSubscription,
// CancelPublication.
package core

import (
	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/sim"
)

// Class is the timeliness/reliability class of an event channel (§2.2).
type Class int

const (
	// HRT channels offer guaranteed latency and bounded jitter under the
	// configured fault assumption, via slot reservations.
	HRT Class = iota
	// SRT channels schedule events by transmission deadline (EDF over CAN
	// priorities); deadlines can be missed under overload, with local
	// exceptions raised for awareness.
	SRT
	// NRT channels carry best-effort traffic on fixed low priorities and
	// support fragmentation of bulk payloads.
	NRT
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case HRT:
		return "HRT"
	case SRT:
		return "SRT"
	case NRT:
		return "NRT"
	}
	return "?"
}

// EventAttrs are the per-event attributes of §2: quality attributes
// (deadline, expiration) plus context. Times are absolute values of the
// publishing node's synchronized local clock.
type EventAttrs struct {
	// Deadline is the transmission deadline of an SRT event: the latest
	// local time by which the message should have been transmitted.
	// Ignored for HRT (the slot defines timing) and NRT events.
	Deadline sim.Time
	// Expiration is the end of the event's temporal validity. An SRT
	// event still queued at this time is removed entirely and the
	// publisher's exception handler is invoked (§2.2.2). Zero disables.
	Expiration sim.Time
	// Timestamp is set by the middleware at publish time (local clock).
	Timestamp sim.Time
}

// Event is an instance of an event type: <subject, attributes, content>.
type Event struct {
	Subject binding.Subject
	Attrs   EventAttrs
	Payload []byte

	// traceID correlates the event across the observability layer's
	// life-cycle stages (0 = untraced). It is simulation metadata, not part
	// of the paper's event model, and therefore unexported.
	traceID uint64
}

// TraceID returns the event's observability trace identifier (0 when
// untraced). Gateways read it to carry the trace across segments.
func (e Event) TraceID() uint64 { return e.traceID }

// WithTraceID returns a copy of ev carrying a preset trace identifier.
// Publishing such an event continues the existing trace (the observer
// adopts the foreign ID) instead of opening a new one — the mechanism a
// relay uses to keep one continuous trace across bus segments that each
// run their own observer.
func WithTraceID(ev Event, id uint64) Event {
	ev.traceID = id
	return ev
}

// ChannelAttrs describe an event channel (§2): they abstract the
// properties of the underlying dissemination — class, rates, reliability —
// rather than any single event.
type ChannelAttrs struct {
	// Payload is the dimensioned payload capacity in bytes. HRT channels
	// must match their slot dimensioning (≤ 7: one byte is used by the
	// middleware header); SRT/non-fragmenting NRT are limited to 8.
	Payload int
	// Periodic marks HRT channels fed strictly every round; for those the
	// subscriber-side middleware detects missing messages and raises
	// SlotMissed. Sporadic HRT channels may leave slots unused (their
	// bandwidth is reclaimed automatically by lower-priority traffic).
	Periodic bool
	// Prio is the fixed priority of an NRT channel. It must lie inside
	// the configured NRT band; the middleware rigorously enforces
	// P_HRT < P_SRT < P_NRT (§3.3).
	Prio can.Prio
	// Fragmentation enables bulk payloads on an NRT channel (§2.2.3).
	Fragmentation bool
	// QueueCap bounds the publisher-side HRT event queue (events waiting
	// for their slots). Zero selects the default of 8; exceeding the cap
	// raises QueueOverflow.
	QueueCap int
	// Value, if non-nil on an SRT channel, assigns the events a time-value
	// function (Jensen, the paper's ref [11]) used by value-based load
	// shedding: when the node's SRT send queue exceeds
	// Middleware.MaxQueuedSRT, the queued event with the least residual
	// value is removed first. See internal/value for standard shapes.
	Value ValueFunc
	// Period declares the channel's minimum inter-publication interval
	// for probabilistic admission control. SRT/NRT channels on a system
	// with an admission controller must declare it (zero is rejected
	// with the undeclared-rate reason); without a controller it is
	// purely informational.
	Period sim.Duration
	// RelDeadline declares the relative transmission deadline the
	// admission analysis guarantees against. Publish still takes
	// per-event absolute deadlines; RelDeadline is the dimensioning
	// value (typically the tightest deadline the publisher will use).
	RelDeadline sim.Duration
}

// ValueFunc maps lateness (now − deadline; negative while early) to the
// value of completing the transmission. value.Function satisfies it.
type ValueFunc interface {
	At(lateness sim.Duration) float64
}

// SubscribeAttrs carry subscriber-side filtering (§2.2.1): attributes
// checked by the local middleware after the controller's etag filter has
// already discarded foreign subjects.
type SubscribeAttrs struct {
	// Publishers restricts notification to events sent by the listed
	// nodes (nil accepts all). This models the paper's example of
	// filtering by origin network segment.
	Publishers []can.TxNode
	// ExcludePublishers drops events from the listed nodes. Its canonical
	// use is origin filtering on a bridged segment: excluding the gateway
	// node's TxNode yields "only events generated on this field bus"
	// (§2.2.1), and a gateway uses it to avoid re-forwarding its own
	// injections.
	ExcludePublishers []can.TxNode
	// Filter, if non-nil, is a content predicate evaluated before
	// notification.
	Filter func(Event) bool
}

func (a SubscribeAttrs) accepts(pub can.TxNode, ev Event) bool {
	for _, p := range a.ExcludePublishers {
		if p == pub {
			return false
		}
	}
	if len(a.Publishers) > 0 {
		ok := false
		for _, p := range a.Publishers {
			if p == pub {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if a.Filter != nil && !a.Filter(ev) {
		return false
	}
	return true
}

// DeliveryInfo accompanies every notification.
type DeliveryInfo struct {
	// Publisher is the transmitting node.
	Publisher can.TxNode
	// PublishedAt is the kernel time of the Publish call (oracle
	// measurement available in simulation; a real system would carry a
	// timestamp attribute instead).
	PublishedAt sim.Time
	// ArrivedAt is the kernel time the frame left the bus.
	ArrivedAt sim.Time
	// DeliveredAt is the kernel time the notification handler ran. For
	// HRT channels this is the slot's delivery deadline (de-jittered);
	// for SRT/NRT it equals arrival.
	DeliveredAt sim.Time
	// Late marks an HRT event that arrived after its delivery deadline
	// (possible only outside the fault assumption).
	Late bool
	// Copies is the number of redundant HRT copies received for this
	// event before delivery.
	Copies int
}

// NotificationHandler is application code run when an event passes all
// filters (§2.2.1). It executes in simulation-kernel context and must not
// block.
type NotificationHandler func(Event, DeliveryInfo)

// ExceptionKind enumerates the exceptional situations the middleware
// reports to the application for awareness and adaptation (§2.2.2).
type ExceptionKind int

const (
	// ExcDeadlineMissed: an SRT event was transmitted after its
	// transmission deadline (transient overload, non-preemptable frame in
	// the way, or EDF approximation artifacts).
	ExcDeadlineMissed ExceptionKind = iota
	// ExcValidityExpired: an SRT event's expiration passed while still
	// queued; it was removed from the send queue entirely.
	ExcValidityExpired
	// ExcSlotMissed: a subscriber of a periodic HRT channel observed no
	// message in a reserved slot (publisher crash or faults beyond the
	// omission degree).
	ExcSlotMissed
	// ExcQueueOverflow: the publisher-side HRT event queue was full.
	ExcQueueOverflow
	// ExcTxFailure: a transmission was abandoned (single-shot collision
	// or node muted).
	ExcTxFailure
	// ExcFragError: reassembly of a fragmented NRT message failed
	// (sequence gap after an inconsistent omission, or timeout).
	ExcFragError
	// ExcLoadShed: an SRT event was dropped by value-based load shedding —
	// the node's send queue was full and this event had the least
	// residual value (Jensen-style overload management, ref [11]).
	ExcLoadShed
	// ExcAdmissionShed: the channel's announcement was withdrawn by the
	// probabilistic admission controller — an error-state transition
	// raised the measured error rate past what the channel's declared
	// deadline tolerates, and this channel was among the most recently
	// admitted violators. Publishes fail with ErrNotAnnounced until the
	// channel is re-announced (which re-runs admission under its
	// re-admission backoff).
	ExcAdmissionShed
)

// String implements fmt.Stringer.
func (k ExceptionKind) String() string {
	switch k {
	case ExcDeadlineMissed:
		return "DeadlineMissed"
	case ExcValidityExpired:
		return "ValidityExpired"
	case ExcSlotMissed:
		return "SlotMissed"
	case ExcQueueOverflow:
		return "QueueOverflow"
	case ExcTxFailure:
		return "TxFailure"
	case ExcFragError:
		return "FragError"
	case ExcLoadShed:
		return "LoadShed"
	case ExcAdmissionShed:
		return "AdmissionShed"
	}
	return "?"
}

// Exception is the local notification delivered to an application's
// exception handler.
type Exception struct {
	Kind    ExceptionKind
	Subject binding.Subject
	// Event is the affected event, when identifiable (nil for SlotMissed).
	Event *Event
	// At is the kernel time the condition was detected.
	At sim.Time
	// Detail is a short human-readable explanation.
	Detail string
}

// ExceptionHandler is application code invoked on exceptional conditions.
type ExceptionHandler func(Exception)

// Counters aggregates per-node middleware statistics.
type Counters struct {
	PublishedHRT, PublishedSRT, PublishedNRT  uint64
	DeliveredHRT, DeliveredSRT, DeliveredNRT  uint64
	SlotsFired, SlotsUnused                   uint64
	RedundantCopiesSent, CopiesSuppressed     uint64
	DuplicatesDropped                         uint64
	SlotMissed, DeadlineMissed, Expired, Shed uint64
	Overflows, TxFailures, FragErrors         uint64
	LateHRTDeliveries                         uint64
	PromotionsApplied                         uint64
	// HoldoverWidened counts HRT guarantee checks performed with slack
	// widened beyond 2π because the clock-sync uncertainty had grown past
	// it (master failover in progress).
	HoldoverWidened uint64
	// Admission counters track the probabilistic admission controller's
	// decisions for channels announced on this node.
	AdmissionAdmitted, AdmissionRejected, AdmissionShed uint64
}
