package core

import (
	"errors"
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/sim"
)

func TestAnnounceIdempotent(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	// Second announce must not double the slot schedulers.
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	got := 0
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ }, nil)
	sys.K.At(sys.Cfg.Epoch-100*sim.Microsecond, func() {
		pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
	})
	sys.Run(sys.Cfg.Epoch + cal.Round - 1)
	if got != 1 {
		t.Fatalf("deliveries = %d (double announce duplicated the scheduler?)", got)
	}
}

func TestSubscribeIdempotentAndHandlerUpdate(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	firstCalls, secondCalls := 0, 0
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { firstCalls++ }, nil)
	// Re-subscribing replaces the handler rather than stacking.
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { secondCalls++ }, nil)
	sys.K.At(sim.Millisecond, func() {
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{1}})
	})
	sys.Run(100 * sim.Millisecond)
	if firstCalls != 0 || secondCalls != 1 {
		t.Fatalf("calls = %d/%d, want 0/1", firstCalls, secondCalls)
	}
}

func TestStopHaltsEverything(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ }, nil)
	for r := int64(0); r < 10; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	sys.K.At(sys.Cfg.Epoch+3*cal.Round, func() { sys.Stop() })
	sys.Run(sys.Cfg.Epoch + 10*cal.Round)
	if got > 4 {
		t.Fatalf("deliveries after Stop: %d", got)
	}
	// Publishing after stop errors.
	if err := pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("publish after stop: %v", err)
	}
	if _, err := sys.Node(0).MW.SRTEC(0xF0); !errors.Is(err, ErrStopped) {
		t.Fatalf("new channel after stop: %v", err)
	}
}

func TestSRTDefaultDeadlineIsHorizon(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	var gotPrio can.Prio
	sys.Bus.Trace = func(e can.TraceEvent) {
		if e.Kind == can.TraceTxStart {
			gotPrio = e.Frame.ID.Prio()
		}
	}
	sys.K.At(sim.Millisecond, func() {
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{1}}) // no deadline
	})
	sys.Run(100 * sim.Millisecond)
	if gotPrio != sys.Node(0).MW.Bands().SRT.Max {
		t.Fatalf("deadline-less event got priority %d, want band max %d",
			gotPrio, sys.Node(0).MW.Bands().SRT.Max)
	}
}

func TestSRTPayloadCap(t *testing.T) {
	sys := idealSystem(t, 1, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	if err := pub.Announce(ChannelAttrs{Payload: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(Event{Subject: subjDiag, Payload: make([]byte, 5)}); !errors.Is(err, ErrPayload) {
		t.Fatalf("oversized payload: %v", err)
	}
	if err := pub.Publish(Event{Subject: subjDiag, Payload: make([]byte, 4)}); err != nil {
		t.Fatalf("fitting payload rejected: %v", err)
	}
	// Announce with invalid sizes.
	bad, _ := sys.Node(0).MW.SRTEC(0xE0)
	if err := bad.Announce(ChannelAttrs{Payload: 9}, nil); !errors.Is(err, ErrPayload) {
		t.Fatalf("payload 9 accepted: %v", err)
	}
}

func TestNRTUnfragmentedCapAndSingleFramePath(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.NRTEC(subjBulk)
	if err := pub.Announce(ChannelAttrs{Prio: 255}, nil); err != nil {
		t.Fatal(err)
	}
	// Without fragmentation the cap is one frame of transport payload.
	if err := pub.Publish(Event{Subject: subjBulk, Payload: make([]byte, 9)}); !errors.Is(err, ErrPayload) {
		t.Fatalf("9-byte unfragmented payload: %v", err)
	}
	var got []byte
	sub, _ := sys.Node(1).MW.NRTEC(subjBulk)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{},
		func(ev Event, _ DeliveryInfo) { got = ev.Payload }, nil)
	sys.K.At(sim.Millisecond, func() {
		if err := pub.Publish(Event{Subject: subjBulk, Payload: []byte{1, 2, 3, 4, 5, 6, 7}}); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	sys.Run(100 * sim.Millisecond)
	if len(got) != 7 {
		t.Fatalf("unfragmented delivery = %v", got)
	}
}

func TestNRTQueueChains(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.NRTEC(subjBulk)
	pub.Announce(ChannelAttrs{Prio: 255, Fragmentation: true}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.NRTEC(subjBulk)
	sub.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ }, nil)
	sys.K.At(sim.Millisecond, func() {
		for i := 0; i < 3; i++ {
			pub.Publish(Event{Subject: subjBulk, Payload: make([]byte, 100)})
		}
		if pub.QueuedChains() != 3 {
			t.Errorf("QueuedChains = %d", pub.QueuedChains())
		}
	})
	sys.Run(1 * sim.Second)
	if got != 3 {
		t.Fatalf("messages delivered = %d", got)
	}
	if pub.QueuedChains() != 0 {
		t.Fatalf("chains left = %d", pub.QueuedChains())
	}
}

func TestExceptionCarriesContext(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	var exc Exception
	pub.Announce(ChannelAttrs{}, func(e Exception) { exc = e })
	// Block the bus so the event expires in queue.
	comp, _ := sys.Node(1).MW.SRTEC(subjOther)
	comp.Announce(ChannelAttrs{}, nil)
	var flood func()
	flood = func() {
		if sys.K.Now() > 30*sim.Millisecond {
			return
		}
		now := sys.Node(1).MW.LocalTime()
		comp.Publish(Event{Subject: subjOther, Payload: []byte{0},
			Attrs: EventAttrs{Deadline: now + 100*sim.Microsecond}})
		sys.K.After(60*sim.Microsecond, flood)
	}
	sys.K.At(0, flood)
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{0xEE},
			Attrs: EventAttrs{Deadline: now + 50*sim.Millisecond, Expiration: now + 5*sim.Millisecond}})
	})
	sys.Run(100 * sim.Millisecond)
	if exc.Kind != ExcValidityExpired {
		t.Fatalf("exception = %+v", exc)
	}
	if exc.Subject != subjDiag || exc.Event == nil || exc.Event.Payload[0] != 0xEE {
		t.Fatalf("exception lost context: %+v", exc)
	}
	if exc.At == 0 || exc.Detail == "" {
		t.Fatalf("exception missing metadata: %+v", exc)
	}
}

func TestCountersAccuracy(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) {}, nil)
	const rounds = 7
	for r := int64(0); r < rounds; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)
	c := sys.TotalCounters()
	if c.PublishedHRT != rounds || c.DeliveredHRT != rounds || c.SlotsFired != rounds {
		t.Fatalf("counters = %+v", c)
	}
	if c.CopiesSuppressed != rounds { // k=1: one suppressed copy per event
		t.Fatalf("CopiesSuppressed = %d", c.CopiesSuppressed)
	}
}

func TestEventTimestampSetOnPublish(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	cal := testCalendar(t, 1)
	_ = cal
	published := false
	sys.K.At(5*sim.Millisecond, func() {
		ev := Event{Subject: subjDiag, Payload: []byte{1}}
		if err := pub.Publish(ev); err != nil {
			t.Errorf("publish: %v", err)
		}
		published = true
	})
	sys.Run(10 * sim.Millisecond)
	if !published {
		t.Fatal("publish never ran")
	}
}

func TestSharedBindingsGiveConsistentEtags(t *testing.T) {
	sys := idealSystem(t, 3, nil)
	a, _ := sys.Node(0).MW.SRTEC(binding.Subject(0xCAFE))
	a.Announce(ChannelAttrs{}, nil)
	b, _ := sys.Node(1).MW.SRTEC(binding.Subject(0xCAFE))
	got := 0
	b.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	sys.K.At(sim.Millisecond, func() {
		a.Publish(Event{Subject: 0xCAFE, Payload: []byte{1}})
	})
	sys.Run(10 * sim.Millisecond)
	if got != 1 {
		t.Fatal("shared binding table did not route between nodes")
	}
	eA, _ := sys.Bindings.Lookup(0xCAFE)
	if eA == 0 {
		t.Fatal("binding not recorded in the shared table")
	}
}

func TestCalendarlessHRTRejected(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	ch, _ := sys.Node(0).MW.HRTEC(subjTemp)
	if err := ch.Announce(ChannelAttrs{Payload: 7}, nil); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("announce without calendar: %v", err)
	}
	if err := ch.Subscribe(ChannelAttrs{Payload: 7}, SubscribeAttrs{}, nil, nil); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("subscribe without calendar: %v", err)
	}
}

func TestPublisherFilterOnHRT(t *testing.T) {
	// Two publishers on the same HRT subject; the subscriber filters to
	// one of them.
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 0, Payload: 8, Periodic: false},
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 1, Payload: 8, Periodic: false},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := idealSystem(t, 3, cal)
	pub0, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub0.Announce(ChannelAttrs{Payload: 7}, nil)
	pub1, _ := sys.Node(1).MW.HRTEC(subjTemp)
	pub1.Announce(ChannelAttrs{Payload: 7}, nil)
	var got []can.TxNode
	sub, _ := sys.Node(2).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7}, SubscribeAttrs{Publishers: []can.TxNode{1}},
		func(_ Event, di DeliveryInfo) { got = append(got, di.Publisher) }, nil)
	sys.K.At(sys.Cfg.Epoch-100*sim.Microsecond, func() {
		pub0.Publish(Event{Subject: subjTemp, Payload: []byte{0}})
		pub1.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
	})
	sys.Run(sys.Cfg.Epoch + cal.Round - 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("filtered HRT deliveries = %v", got)
	}
}

func TestChannelsIntrospection(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	h, _ := sys.Node(0).MW.HRTEC(subjTemp)
	h.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	s, _ := sys.Node(0).MW.SRTEC(subjDiag)
	s.Announce(ChannelAttrs{}, nil)
	n, _ := sys.Node(0).MW.NRTEC(subjBulk)
	n.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{}, nil, nil)

	infos := sys.Node(0).MW.Channels()
	if len(infos) != 3 {
		t.Fatalf("channels = %d", len(infos))
	}
	byClass := map[Class]ChannelInfo{}
	for i := 1; i < len(infos); i++ {
		if infos[i].Etag < infos[i-1].Etag {
			t.Fatal("channels not sorted by etag")
		}
	}
	for _, in := range infos {
		byClass[in.Class] = in
	}
	if !byClass[HRT].Announced || byClass[HRT].Subject != subjTemp || !byClass[HRT].Attrs.Periodic {
		t.Fatalf("HRT info = %+v", byClass[HRT])
	}
	if !byClass[SRT].Announced || byClass[SRT].Subscribed {
		t.Fatalf("SRT info = %+v", byClass[SRT])
	}
	if byClass[NRT].Announced || !byClass[NRT].Subscribed {
		t.Fatalf("NRT info = %+v", byClass[NRT])
	}
}
