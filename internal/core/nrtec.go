package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/frag"
	"canec/internal/obs"
	"canec/internal/sim"
)

// NRTEC is a non real-time event channel (§2.2.3): a fixed application-
// chosen priority inside the NRT band (the middleware only accepts
// priorities within the predefined range), no timeliness machinery, and
// optional fragmentation so configuration and maintenance data — memory
// images, electronic data sheets, test patterns — can be published as one
// large event spread over a chain of CAN frames.
type NRTEC struct {
	ch *channelState
}

// NRTEC returns the non real-time channel for a subject on this node.
func (mw *Middleware) NRTEC(subject binding.Subject) (*NRTEC, error) {
	ch, err := mw.channel(subject, NRT)
	if err != nil {
		return nil, err
	}
	return &NRTEC{ch: ch}, nil
}

// reasmState holds per-publisher reassembly for a fragmented channel.
type reasmState struct {
	r     frag.Reassembler
	start sim.Time
}

// Announce prepares the channel for publication. The priority is fixed at
// announcement time and must lie inside the NRT band; fragmentation is an
// inherent channel attribute declared here (§2.2.3).
func (c *NRTEC) Announce(attrs ChannelAttrs, exc ExceptionHandler) error {
	ch := c.ch
	mw := ch.mw
	if mw.stopped {
		return ErrStopped
	}
	if attrs.Prio == 0 {
		attrs.Prio = mw.bands.NRTMax
	}
	if attrs.Prio < mw.bands.NRTMin || attrs.Prio > mw.bands.NRTMax {
		return fmt.Errorf("%w: %d not in [%d,%d]", ErrPrioOutOfBand,
			attrs.Prio, mw.bands.NRTMin, mw.bands.NRTMax)
	}
	if !attrs.Fragmentation && (attrs.Payload < 0 || attrs.Payload > can.MaxPayload) {
		return fmt.Errorf("%w: NRT payload %d (max %d without fragmentation)",
			ErrPayload, attrs.Payload, can.MaxPayload)
	}
	if !attrs.Fragmentation && attrs.Payload == 0 {
		attrs.Payload = can.MaxPayload
	}
	if err := mw.admissionRequest(ch, attrs); err != nil {
		return err
	}
	ch.attrs = attrs
	ch.pubExc = exc
	ch.announced = true
	return nil
}

// CancelPublication withdraws the announcement; queued fragment chains
// are dropped.
func (c *NRTEC) CancelPublication() {
	c.ch.nrtQueue = nil
	c.ch.announced = false
	c.ch.mw.admissionRelease(c.ch)
}

// Publish sends an event. On a fragmenting channel the payload may be
// arbitrarily long; it is split into a chain of frames transmitted
// back-to-back at the channel's fixed priority, so bulk transfers consume
// exactly the bandwidth that HRT/SRT traffic leaves over.
func (c *NRTEC) Publish(ev Event) error {
	prof := c.ch.mw.K.Probe()
	if prof == nil {
		return c.publish(ev)
	}
	pt0 := sim.ProbeNow()
	err := c.publish(ev)
	prof.StageNs(sim.ProbeEnqueue, sim.ProbeClassNRT, sim.ProbeNow()-pt0)
	return err
}

func (c *NRTEC) publish(ev Event) error {
	ch := c.ch
	mw := ch.mw
	if !ch.announced {
		return ErrNotAnnounced
	}
	if mw.stopped {
		return ErrStopped
	}
	ev.Attrs.Timestamp = mw.LocalTime()
	if !ch.attrs.Fragmentation && len(ev.Payload) > ch.attrs.Payload {
		return fmt.Errorf("%w: %d > %d (announce with Fragmentation for bulk)",
			ErrPayload, len(ev.Payload), ch.attrs.Payload)
	}
	// Unfragmented NRT payloads still travel as single-frame transport
	// messages so the receiver can tell them from fragment chains.
	payloads, err := frag.Fragment(ev.Payload)
	if err != nil {
		return err
	}
	if ev.traceID == 0 {
		ev.traceID = mw.Obs.Begin(NRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	} else {
		mw.Obs.Adopt(ev.traceID, NRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	}
	c.enqueueChain(c.toFrames(payloads, ev.traceID))
	mw.counters.PublishedNRT++
	mw.Obs.Emit(ev.traceID, obs.StageEnqueued, NRT.String(), mw.node.Index,
		uint64(ch.subject), mw.K.Now(), fmt.Sprintf("%d fragment(s)", len(payloads)))
	return nil
}

// toFrames wraps fragment payloads into CAN frames at the channel's
// fixed priority, tagging the whole chain with the event's trace ID.
func (c *NRTEC) toFrames(payloads [][]byte, tag uint64) []can.Frame {
	ch := c.ch
	mw := ch.mw
	id := can.MakeID(ch.attrs.Prio, mw.node.Ctrl.Node(), ch.etag)
	frames := make([]can.Frame, len(payloads))
	for i, p := range payloads {
		frames[i] = can.Frame{ID: id, Data: p, Tag: tag}
	}
	return frames
}

// enqueueChain appends a fragment chain to the send queue and starts the
// sender if idle. Chains are sent strictly one frame at a time — each
// fragment is submitted when its predecessor completes — so a bulk
// transfer never floods the controller and interleaves fairly with other
// traffic at every arbitration point.
func (c *NRTEC) enqueueChain(frames []can.Frame) {
	ch := c.ch
	ch.nrtQueue = append(ch.nrtQueue, frames)
	if !ch.nrtBusy {
		c.sendNext()
	}
}

// sendNext transmits the head fragment of the head chain.
func (c *NRTEC) sendNext() {
	ch := c.ch
	mw := ch.mw
	if mw.stopped || len(ch.nrtQueue) == 0 {
		ch.nrtBusy = false
		return
	}
	// Error-passive degradation: a sender whose error counters crossed the
	// passive threshold is one error burst away from bus-off, so it stops
	// burning bus time on bulk transfers — queued NRT chains are shed until
	// the controller is error-active again, leaving the remaining error
	// budget to the HRT calendar and SRT band. With fault confinement off
	// the state is always error-active and this is a single comparison.
	if mw.node.Ctrl.State() == can.ErrorPassive {
		for _, chain := range ch.nrtQueue {
			mw.counters.Shed++
			ch.raisePub(Exception{
				Kind: ExcLoadShed, Subject: ch.subject,
				At: mw.K.Now(), Detail: "error-passive: NRT shed to protect RT bands",
			})
			mw.Obs.Emit(chain[0].Tag, obs.StageShed, NRT.String(), mw.node.Index,
				uint64(ch.subject), mw.K.Now(), "error_passive")
		}
		ch.nrtQueue = nil
		ch.nrtBusy = false
		return
	}
	ch.nrtBusy = true
	chain := ch.nrtQueue[0]
	frame := chain[0]
	mw.node.Ctrl.Submit(frame, can.SubmitOpts{Done: func(ok bool, _ sim.Time) {
		if !ok {
			ch.raisePub(Exception{
				Kind: ExcTxFailure, Subject: ch.subject,
				At: mw.K.Now(), Detail: "NRT fragment abandoned",
			})
			mw.Obs.Emit(frame.Tag, obs.StageDropped, NRT.String(), mw.node.Index,
				uint64(ch.subject), mw.K.Now(), "tx_abandoned")
			// Drop the rest of the chain: the receiver cannot complete it.
			ch.nrtQueue = ch.nrtQueue[1:]
			c.sendNext()
			return
		}
		if len(chain) > 1 {
			ch.nrtQueue[0] = chain[1:]
		} else {
			ch.nrtQueue = ch.nrtQueue[1:]
		}
		c.sendNext()
	}})
}

// QueuedChains reports how many messages (fragment chains) await
// transmission, including the one in progress.
func (c *NRTEC) QueuedChains() int { return len(c.ch.nrtQueue) }

// Subscribe installs the handlers and acceptance filter. Completed
// messages are delivered on arrival of their last fragment; reassembly
// failures (sequence gaps after silent losses, stalled transfers) raise
// FragError.
func (c *NRTEC) Subscribe(attrs ChannelAttrs, sub SubscribeAttrs, notify NotificationHandler, exc ExceptionHandler) error {
	ch := c.ch
	if ch.mw.stopped {
		return ErrStopped
	}
	if !ch.announced {
		ch.attrs = attrs
	}
	ch.subAttrs = sub
	ch.notify = notify
	ch.subExc = exc
	if !ch.subscribed {
		ch.subscribed = true
		ch.mw.node.Ctrl.AddFilter(ch.etag)
	}
	return nil
}

// CancelSubscription removes the subscription (strictly local).
func (c *NRTEC) CancelSubscription() {
	ch := c.ch
	ch.subscribed = false
	ch.notify = nil
	ch.reasm = make(map[can.TxNode]*reasmState)
	ch.mw.node.Ctrl.RemoveFilter(ch.etag)
}

// nrtReceive feeds an arriving fragment into the per-publisher
// reassembler and notifies on completion.
func (ch *channelState) nrtReceive(f can.Frame, at sim.Time) {
	pub := f.ID.TxNode()
	rs, ok := ch.reasm[pub]
	if !ok {
		rs = &reasmState{r: frag.Reassembler{Timeout: 5 * sim.Second}, start: at}
		ch.reasm[pub] = rs
	}
	if !rs.r.Active() {
		rs.start = at
	}
	msg, err := rs.r.Push(f.Data, at)
	if err != nil {
		ch.raiseSub(Exception{
			Kind: ExcFragError, Subject: ch.subject, At: at,
			Detail: err.Error(),
		})
		return
	}
	if msg == nil {
		return
	}
	ev := Event{Subject: ch.subject, Payload: msg, traceID: f.Tag}
	if !ch.subAttrs.accepts(pub, ev) {
		return
	}
	mw := ch.mw
	mw.counters.DeliveredNRT++
	di := DeliveryInfo{Publisher: pub, ArrivedAt: at, DeliveredAt: at}
	if pubAt, ok := mw.Obs.PublishKernelTime(ev.traceID); ok {
		di.PublishedAt = pubAt
	}
	ch.store(ev, di)
	mw.Obs.Delivered(ev.traceID, NRT.String(), mw.node.Index,
		uint64(ch.subject), at, "")
	ch.deliverNotify(ev, di)
}

// GetEvent retrieves the most recently delivered event from the
// middleware's memory area — the paper's getEvent() primitive (§2.2.1).
func (c *NRTEC) GetEvent() (ev Event, di DeliveryInfo, ok bool) { return c.ch.getEvent() }
