package core

import (
	"errors"
	"fmt"
	"sort"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/edf"
	"canec/internal/obs"
	"canec/internal/prob"
	"canec/internal/sim"
)

// Bands fixes the global priority layout. The middleware rigorously
// enforces the paper's relation 0 ≤ P_HRT < P_SRT < P_NRT (§3.3): HRT
// traffic owns priority 0, clock synchronization runs directly below it,
// the SRT band maps deadlines, and the NRT band provides fixed low
// priorities.
type Bands struct {
	// HRTPrio is the single reserved hard real-time priority (0).
	HRTPrio can.Prio
	// SyncPrio carries clock synchronization (directly below HRT).
	SyncPrio can.Prio
	// SRT is the EDF band.
	SRT edf.Band
	// NRTMin..NRTMax is the non real-time band (NRTMax = lowest priority).
	NRTMin, NRTMax can.Prio
}

// DefaultBands returns the layout used throughout the experiments:
// HRT = 0, sync = 1, SRT = 2..250 (the paper's 250-level example less the
// sync level), NRT = 251..255 (5 levels).
func DefaultBands() Bands {
	b := edf.DefaultBand()
	b.Min = 2
	return Bands{HRTPrio: 0, SyncPrio: 1, SRT: b, NRTMin: 251, NRTMax: 255}
}

// Validate checks the band ordering invariant.
func (b Bands) Validate() error {
	if err := b.SRT.Validate(); err != nil {
		return err
	}
	if !(b.HRTPrio < b.SyncPrio && b.SyncPrio < b.SRT.Min && b.SRT.Max < b.NRTMin && b.NRTMin <= b.NRTMax) {
		return fmt.Errorf("core: band ordering violated: hrt=%d sync=%d srt=[%d,%d] nrt=[%d,%d]",
			b.HRTPrio, b.SyncPrio, b.SRT.Min, b.SRT.Max, b.NRTMin, b.NRTMax)
	}
	return nil
}

// Node bundles one station's controller, clock and middleware.
type Node struct {
	Index int
	Ctrl  *can.Controller
	Clock *clock.Clock
	MW    *Middleware
}

// Middleware is the per-node event channel layer.
type Middleware struct {
	K     *sim.Kernel
	node  *Node
	bands Bands

	// Bindings is this node's (static) subject→etag table, distributed
	// with the off-line configuration.
	Bindings *binding.Table
	// Cal is the hard real-time calendar (may be nil if the node uses no
	// HRT channels). Epoch is the local time of round 0's start.
	Cal   *calendar.Calendar
	Epoch sim.Time

	// SuppressRedundancy enables the paper's bandwidth optimisation: stop
	// sending redundant HRT copies once one transmission was consistently
	// successful (§3.2). Disabling it always sends OmissionDegree+1
	// copies, like TTP/TTCAN-style static redundancy.
	SuppressRedundancy bool

	// DisablePromotion freezes each SRT message at the priority computed
	// when it was enqueued (ablation of the §3.4 dynamic priority
	// increase: "static deadline priorities").
	DisablePromotion bool

	// DeliverOnArrival bypasses the HRT delivery-at-deadline machinery
	// and notifies subscribers as soon as the frame leaves the bus
	// (ablation of the §3.2 middleware de-jittering).
	DeliverOnArrival bool

	// MaxQueuedSRT bounds the node's total queued SRT events across all
	// channels. When a publish would exceed it, value-based load shedding
	// removes the queued event with the least residual value (Jensen, ref
	// [11]); channels without a value function count as value 1 while
	// before their deadline and 0 after. Zero disables shedding.
	MaxQueuedSRT int

	// Syncer, if set, receives frames on the sync etag.
	Syncer interface {
		HandleFrame(node int, f can.Frame, at sim.Time)
	}
	// Health, if set, reports this node's current clock uncertainty bound
	// (the clock.Syncer implements it). During master failover the bound
	// grows past the calendar's precision, and the HRT machinery widens
	// its delivery-guarantee slack accordingly instead of flagging
	// spurious late deliveries and slot misses.
	Health interface {
		Uncertainty(node int, now sim.Time) sim.Duration
	}
	// ConfigRx, if set, receives frames on the config etag (binding
	// agent or client).
	ConfigRx func(f can.Frame, at sim.Time)

	// Obs, if non-nil, receives life-cycle stage records and metrics for
	// this node's channel activity. All emission helpers are nil-safe, so
	// the middleware calls them unconditionally.
	Obs *obs.Observer

	// Admission, if non-nil, is the segment-wide probabilistic admission
	// controller consulted when SRT/NRT channels are announced (HRT
	// channels are dimensioned deterministically by the calendar and
	// bypass it). Nil keeps announcement unconditional — the admission
	// path costs nothing on Publish either way, because a shed channel
	// is simply de-announced.
	Admission *prob.Controller

	channels map[can.Etag]*channelState
	counters Counters
	stopped  bool
	watchdog *Watchdog
	srtSeq   uint64
}

// NewMiddleware wires a middleware onto a node. The caller retains
// ownership of calendar/bindings configuration before Start.
func NewMiddleware(k *sim.Kernel, node *Node, bands Bands) *Middleware {
	mw := &Middleware{
		K:                  k,
		node:               node,
		bands:              bands,
		Bindings:           binding.NewTable(),
		SuppressRedundancy: true,
		channels:           make(map[can.Etag]*channelState),
	}
	node.MW = mw
	node.Ctrl.OnReceive = mw.dispatch
	// The controller filter starts selective with the two system channels
	// admitted; each Subscribe adds its channel's etag. Subject filtering
	// thus happens in the communication controller, not the node CPU —
	// the dynamic-binding optimisation of §2.1.
	node.Ctrl.AddFilter(binding.SyncEtag)
	node.Ctrl.AddFilter(binding.ConfigEtag)
	return mw
}

// Node returns the owning node.
func (mw *Middleware) Node() *Node { return mw.node }

// Bands returns the priority layout.
func (mw *Middleware) Bands() Bands { return mw.bands }

// Counters returns a snapshot of the node's statistics.
func (mw *Middleware) Counters() Counters { return mw.counters }

// LocalTime returns the node's current local clock reading.
func (mw *Middleware) LocalTime() sim.Time { return mw.node.Clock.Read(mw.K.Now()) }

// Stop halts all channel activity (slot schedulers, promotion timers stop
// re-arming). Used by experiments to end a run cleanly.
func (mw *Middleware) Stop() { mw.stopped = true }

// probeClass maps a channel class onto the kernel probe's class axis.
func probeClass(c Class) sim.ProbeClass {
	switch c {
	case HRT:
		return sim.ProbeClassHRT
	case SRT:
		return sim.ProbeClassSRT
	case NRT:
		return sim.ProbeClassNRT
	}
	return sim.ProbeClassNone
}

// dispatch routes received frames, attributing the receive-side cost to
// the profiler's dispatch stage when a probe is attached to the kernel
// (one nil check otherwise).
func (mw *Middleware) dispatch(f can.Frame, at sim.Time) {
	prof := mw.K.Probe()
	if prof == nil {
		mw.dispatchFrame(f, at)
		return
	}
	pt0 := sim.ProbeNow()
	mw.dispatchFrame(f, at)
	class := sim.ProbeClassNone
	if ch, ok := mw.channels[f.ID.Etag()]; ok {
		class = probeClass(ch.class)
	}
	prof.StageNs(sim.ProbeDispatch, class, sim.ProbeNow()-pt0)
}

// dispatchFrame routes received frames: sync and configuration channels
// first, then per-etag channel state.
func (mw *Middleware) dispatchFrame(f can.Frame, at sim.Time) {
	etag := f.ID.Etag()
	switch etag {
	case binding.SyncEtag:
		if mw.Syncer != nil {
			mw.Syncer.HandleFrame(mw.node.Index, f, at)
		}
		return
	case binding.ConfigEtag:
		if mw.ConfigRx != nil {
			mw.ConfigRx(f, at)
		}
		return
	}
	ch, ok := mw.channels[etag]
	if !ok || !ch.subscribed {
		return
	}
	switch ch.class {
	case HRT:
		ch.hrtReceive(f, at)
	case SRT:
		ch.srtReceive(f, at)
	case NRT:
		ch.nrtReceive(f, at)
	}
}

// channelState is the middleware-internal representation of one event
// channel on one node (§2: "an event channel is dynamically created
// whenever a publisher makes an announcement ... or a subscriber
// subscribes").
type channelState struct {
	mw      *Middleware
	subject binding.Subject
	etag    can.Etag
	class   Class
	attrs   ChannelAttrs

	// publisher side
	announced bool
	pubExc    ExceptionHandler
	// subscriber side
	subscribed bool
	subAttrs   SubscribeAttrs
	notify     NotificationHandler
	subExc     ExceptionHandler

	// HRT publisher: pending events waiting for slots, per-slot sequence.
	hrtQueue    []Event
	hrtQueueCap int
	hrtSeq      uint8
	// HRT subscriber: per-publisher dedup, arrival stash and last
	// delivered round (for missing-message detection).
	hrtLastSeq   map[can.TxNode]uint8
	hrtSeen      map[can.TxNode]bool
	hrtStash     map[can.TxNode]*hrtArrival
	hrtDelivered map[can.TxNode]int64

	// SRT publisher bookkeeping (promotion, expiration).
	srtActive map[*srtEntry]bool

	// NRT publisher: send queue of fragment chains.
	nrtBusy  bool
	nrtQueue [][]can.Frame
	// NRT subscriber: per-publisher reassembly.
	reasm map[can.TxNode]*reasmState

	// Mailbox: the most recently delivered event (§2.2.1: the middleware
	// stores the event in a predefined memory area; the notification
	// handler retrieves it with getEvent()).
	lastEvent *Event
	lastInfo  DeliveryInfo

	// missed counts this channel's timing failures (deadline misses,
	// validity expiries, missed HRT slots) for the introspection plane.
	missed uint64
}

// getEvent returns the mailbox contents.
func (ch *channelState) getEvent() (Event, DeliveryInfo, bool) {
	if ch.lastEvent == nil {
		return Event{}, DeliveryInfo{}, false
	}
	return *ch.lastEvent, ch.lastInfo, true
}

// store fills the mailbox prior to notification.
func (ch *channelState) store(ev Event, di DeliveryInfo) {
	ch.lastEvent = &ev
	ch.lastInfo = di
}

// deliverNotify runs the subscriber's notification handler, attributing
// its cost (and counting one delivered frame) to the profiler's delivery
// stage when a probe is attached.
func (ch *channelState) deliverNotify(ev Event, di DeliveryInfo) {
	if ch.notify == nil {
		return
	}
	prof := ch.mw.K.Probe()
	if prof == nil {
		ch.notify(ev, di)
		return
	}
	pt0 := sim.ProbeNow()
	ch.notify(ev, di)
	prof.StageNs(sim.ProbeDelivery, probeClass(ch.class), sim.ProbeNow()-pt0)
}

var (
	// ErrNotAnnounced is returned by Publish before Announce.
	ErrNotAnnounced = errors.New("core: channel not announced")
	// ErrPayload is returned for payloads beyond the channel's capacity.
	ErrPayload = errors.New("core: payload exceeds channel capacity")
	// ErrClassMismatch is returned when a subject is reused with a
	// different channel class: every subject has at most one channel.
	ErrClassMismatch = errors.New("core: subject already bound to a different channel class")
	// ErrNoSlot is returned when an HRT announce finds no reserved slot
	// for (subject, node) in the calendar.
	ErrNoSlot = errors.New("core: no calendar slot reserved for this publisher")
	// ErrPrioOutOfBand is returned when an NRT announce requests a
	// priority outside the NRT band: the middleware "rigorously has to
	// enforce" the band relation (§3.3).
	ErrPrioOutOfBand = errors.New("core: NRT priority outside the configured band")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("core: middleware stopped")
)

// channel returns or creates the state for a subject, checking class
// consistency ("for every event type there is at most one event channel",
// §2).
func (mw *Middleware) channel(subject binding.Subject, class Class) (*channelState, error) {
	if mw.stopped {
		return nil, ErrStopped
	}
	etag, err := mw.Bindings.Bind(subject)
	if err != nil {
		return nil, err
	}
	if ch, ok := mw.channels[etag]; ok {
		if ch.class != class {
			return nil, ErrClassMismatch
		}
		return ch, nil
	}
	ch := &channelState{
		mw:           mw,
		subject:      subject,
		etag:         etag,
		class:        class,
		hrtQueueCap:  8,
		hrtLastSeq:   make(map[can.TxNode]uint8),
		hrtSeen:      make(map[can.TxNode]bool),
		hrtStash:     make(map[can.TxNode]*hrtArrival),
		hrtDelivered: make(map[can.TxNode]int64),
		srtActive:    make(map[*srtEntry]bool),
		reasm:        make(map[can.TxNode]*reasmState),
	}
	mw.channels[etag] = ch
	return ch, nil
}

// raisePub invokes the publisher-side exception handler if installed.
func (ch *channelState) raisePub(e Exception) {
	switch e.Kind {
	case ExcDeadlineMissed:
		ch.mw.counters.DeadlineMissed++
		ch.missed++
	case ExcValidityExpired:
		ch.mw.counters.Expired++
		ch.missed++
	case ExcQueueOverflow:
		ch.mw.counters.Overflows++
	case ExcLoadShed:
		ch.mw.counters.Shed++
	case ExcAdmissionShed:
		ch.mw.counters.AdmissionShed++
	case ExcTxFailure:
		ch.mw.counters.TxFailures++
	}
	ch.mw.Obs.ExceptionRaised(e.Kind.String())
	if ch.pubExc != nil {
		ch.pubExc(e)
	}
}

// raiseSub invokes the subscriber-side exception handler if installed.
func (ch *channelState) raiseSub(e Exception) {
	switch e.Kind {
	case ExcSlotMissed:
		ch.mw.counters.SlotMissed++
		ch.missed++
	case ExcFragError:
		ch.mw.counters.FragErrors++
	}
	ch.mw.Obs.ExceptionRaised(e.Kind.String())
	if ch.subExc != nil {
		ch.subExc(e)
	}
}

// hrtSlack returns the tolerance applied to HRT deadline checks: twice
// the calendar's clock precision in steady state, widened to the current
// holdover uncertainty bound when the synchronization health degrades
// past it (the paper's guarantees assume π; while no master is correcting
// the clocks, π is unattainable and the guarantee is explicitly widened
// rather than silently violated).
func (mw *Middleware) hrtSlack() sim.Duration {
	slack := 2 * mw.Cal.Cfg.Precision
	if mw.Health != nil {
		if u := mw.Health.Uncertainty(mw.node.Index, mw.K.Now()); u > slack {
			mw.counters.HoldoverWidened++
			return u
		}
	}
	return slack
}

// hrtQueuedTotal counts events waiting for slots across the node's HRT
// channels (for the observability queue-depth gauge).
func (mw *Middleware) hrtQueuedTotal() int {
	n := 0
	for _, ch := range mw.channels {
		if ch.class == HRT {
			n += len(ch.hrtQueue)
		}
	}
	return n
}

// nrtQueuedTotal counts queued fragment chains across the node's NRT
// channels, including the one in progress.
func (mw *Middleware) nrtQueuedTotal() int {
	n := 0
	for _, ch := range mw.channels {
		if ch.class == NRT {
			n += len(ch.nrtQueue)
		}
	}
	return n
}

// ChannelInfo is a read-only snapshot of one channel's state, for
// monitoring and debugging (the admin plane serves it at /channels).
type ChannelInfo struct {
	Subject    binding.Subject
	Etag       can.Etag
	Class      Class
	Announced  bool
	Subscribed bool
	Attrs      ChannelAttrs
	// Queued is the channel's current send-side backlog: pending HRT
	// slot events, active (unexpired) SRT entries, or queued NRT
	// fragment chains.
	Queued int
	// Missed counts the channel's timing failures so far: deadline
	// misses, validity expiries, and missed HRT slots.
	Missed uint64
}

// queued returns the channel's current send-side backlog.
func (ch *channelState) queued() int {
	switch ch.class {
	case HRT:
		return len(ch.hrtQueue)
	case SRT:
		return len(ch.srtActive)
	case NRT:
		return len(ch.nrtQueue)
	}
	return 0
}

// Channels lists the channels this node's middleware currently holds,
// in etag order.
func (mw *Middleware) Channels() []ChannelInfo {
	out := make([]ChannelInfo, 0, len(mw.channels))
	for _, ch := range mw.channels {
		out = append(out, ChannelInfo{
			Subject:    ch.subject,
			Etag:       ch.etag,
			Class:      ch.class,
			Announced:  ch.announced,
			Subscribed: ch.subscribed,
			Attrs:      ch.attrs,
			Queued:     ch.queued(),
			Missed:     ch.missed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Etag < out[j].Etag })
	return out
}
