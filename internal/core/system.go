package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/obs"
	"canec/internal/prob"
	"canec/internal/sim"
)

// SystemConfig assembles a complete simulated CAN segment: bus, drifting
// clocks with synchronization, the hard real-time calendar and one
// middleware per node.
type SystemConfig struct {
	// Nodes is the number of stations (TxNode i for station i).
	Nodes int
	// BitRate of the bus; 0 selects 1 Mbit/s.
	BitRate int
	// Seed drives all randomness (clock drifts, fault injection,
	// workloads using the kernel RNG). Ignored when Kernel is supplied.
	Seed uint64
	// Kernel, if non-nil, hosts this segment on an existing simulation
	// kernel so that several bus segments (e.g. bridged by a gateway)
	// share one virtual time base.
	Kernel *sim.Kernel
	// Bands is the priority layout; zero value selects DefaultBands.
	Bands Bands
	// Calendar is the validated HRT schedule (nil if no HRT channels).
	Calendar *calendar.Calendar
	// Epoch is the synchronized local time of calendar round 0. It should
	// leave room for clock synchronization to converge; DefaultEpoch is
	// used when zero and synchronization is enabled.
	Epoch sim.Time
	// Sync configures clock synchronization; a zero Period disables it
	// (all clocks then free-run, which is only sensible with zero drift).
	Sync clock.SyncConfig
	// Master is the station acting as initial time master (default 0).
	Master int
	// SyncBackups ranks the backup time masters for failover; empty keeps
	// the single-master configuration of the paper.
	SyncBackups []int
	// MaxDriftPPM bounds the per-node clock rate error; each node draws
	// uniformly from ±MaxDriftPPM.
	MaxDriftPPM float64
	// MaxInitialOffset bounds the initial clock offsets (uniform ±).
	MaxInitialOffset sim.Duration
	// NoSuppressRedundancy disables the paper's bandwidth reclamation of
	// redundant HRT copies (then OmissionDegree+1 copies are always sent,
	// TTP-style).
	NoSuppressRedundancy bool
	// ConfineFaults enables CAN 2.0 fault confinement on the bus: TEC/REC
	// error counters, error-passive degradation and bus-off with the
	// 128×11-recessive-bit recovery rule. Off by default — the paper's
	// experiments assume error-active controllers throughout.
	ConfineFaults bool
	// Injector is the fault model (nil = fault-free).
	Injector can.Injector
	// Admission, if non-nil, installs the probabilistic admission
	// controller: SRT/NRT channels are analyzed at announce time against
	// the configured per-class deadline-miss targets, and the admitted
	// set is re-evaluated when error-state transitions (error-passive,
	// bus-off, guardian isolation) raise the measured error rate. HRT
	// channels stay deterministic (calendar-dimensioned) and bypass it.
	// The analyzer's bit rate and reserved HRT interference default from
	// BitRate and Calendar when left zero.
	Admission *prob.AdmissionConfig
	// Observe opts the system into the observability layer (life-cycle
	// tracing and/or metrics); nil keeps every instrumentation point a
	// single nil check.
	Observe *obs.Config
}

// DefaultEpoch leaves three synchronization periods for convergence
// before calendar round 0.
func DefaultEpoch(sync clock.SyncConfig) sim.Time {
	return 3 * sync.Period
}

// System is a fully wired simulation instance.
type System struct {
	K      *sim.Kernel
	Bus    *can.Bus
	Nodes  []*Node
	Clocks []*clock.Clock
	Syncer *clock.Syncer
	Cfg    SystemConfig
	// Bindings is the shared (statically distributed) subject→etag table.
	Bindings *binding.Table
	// Obs is the observability layer (nil unless Cfg.Observe was set).
	Obs *obs.Observer
	// SLO is the objective engine (nil unless Cfg.Observe.SLO was set).
	SLO *obs.SLO
	// Admission is the probabilistic admission controller (nil unless
	// Cfg.Admission was set).
	Admission *prob.Controller
}

// NewSystem builds and validates a system. The caller typically announces
// and subscribes channels next, then calls Run.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("core: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Nodes > can.MaxTxNode {
		return nil, fmt.Errorf("core: %d nodes exceed the 7-bit TxNode space", cfg.Nodes)
	}
	if (cfg.Bands == Bands{}) {
		cfg.Bands = DefaultBands()
	}
	if err := cfg.Bands.Validate(); err != nil {
		return nil, err
	}
	if cfg.Calendar != nil {
		if err := cfg.Calendar.Admit(); err != nil {
			return nil, err
		}
	}
	if cfg.Sync.Period > 0 {
		cfg.Sync.Prio = cfg.Bands.SyncPrio
		cfg.Sync.Etag = binding.SyncEtag
		if cfg.Sync.MaxDriftPPM == 0 {
			cfg.Sync.MaxDriftPPM = cfg.MaxDriftPPM
		}
		if cfg.Epoch == 0 {
			cfg.Epoch = DefaultEpoch(cfg.Sync)
		}
		if cfg.Master < 0 || cfg.Master >= cfg.Nodes {
			return nil, fmt.Errorf("core: sync master station %d of %d", cfg.Master, cfg.Nodes)
		}
		for _, b := range cfg.SyncBackups {
			if b < 0 || b >= cfg.Nodes || b == cfg.Master {
				return nil, fmt.Errorf("core: sync backup station %d invalid", b)
			}
		}
	}

	k := cfg.Kernel
	if k == nil {
		k = sim.NewKernel(cfg.Seed)
	}
	bus := can.NewBus(k, cfg.BitRate)
	bus.ConfineFaults = cfg.ConfineFaults
	if cfg.Injector != nil {
		bus.Injector = cfg.Injector
	}
	sys := &System{K: k, Bus: bus, Cfg: cfg, Bindings: binding.NewTable()}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Analyzer.BitRate == 0 {
			ac.Analyzer.BitRate = cfg.BitRate
		}
		if err := ac.Analyzer.Model.Validate(); err != nil {
			return nil, fmt.Errorf("core: admission error model: %w", err)
		}
		if len(ac.Reserved) == 0 && cfg.Calendar != nil {
			// The calendar's HRT slots are deterministic interference every
			// probabilistic channel must yield to (P_HRT < P_SRT < P_NRT).
			ac.Reserved = ReservedFromCalendar(cfg.Calendar)
		}
		sys.Admission = prob.NewController(ac, k.Now)
	}
	if cfg.Observe != nil {
		sys.Obs = obs.New(*cfg.Observe, k.Now, obs.BandMap{
			HRT: cfg.Bands.HRTPrio, Sync: cfg.Bands.SyncPrio,
			SRTMin: cfg.Bands.SRT.Min, SRTMax: cfg.Bands.SRT.Max,
			NRTMin: cfg.Bands.NRTMin, NRTMax: cfg.Bands.NRTMax,
		})
		sys.Obs.SubjectOf = func(e can.Etag) (uint64, bool) {
			s, ok := sys.Bindings.SubjectOf(e)
			return uint64(s), ok
		}
		sys.Obs.InstallBus(bus)
		if cfg.Observe.SLO != nil {
			// Note: the engine keeps a tick pending, so SLO-enabled systems
			// must be driven with Run(horizon), never RunUntilIdle.
			sloCfg := *cfg.Observe.SLO
			if sys.Admission != nil && sloCfg.SRTPredictedMiss == nil {
				// Close the admission loop: the analyzer's predicted SRT
				// miss probability becomes the dynamic burn-rate budget
				// the measured miss rate is checked against.
				sloCfg.SRTPredictedMiss = func() float64 {
					return sys.Admission.PredictedMiss("SRT")
				}
			}
			sys.SLO = sys.Obs.StartSLO(k, sloCfg)
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		drift := 0.0
		if cfg.MaxDriftPPM > 0 {
			drift = (k.RNG().Float64()*2 - 1) * cfg.MaxDriftPPM
		}
		var off sim.Duration
		if cfg.MaxInitialOffset > 0 {
			off = k.RNG().Jitter(cfg.MaxInitialOffset)
		}
		clk := clock.New(drift, off)
		ctrl := bus.Attach(can.TxNode(i))
		node := &Node{Index: i, Ctrl: ctrl, Clock: clk}
		mw := NewMiddleware(k, node, cfg.Bands)
		mw.Bindings = sys.Bindings
		mw.Cal = cfg.Calendar
		mw.Epoch = cfg.Epoch
		mw.SuppressRedundancy = !cfg.NoSuppressRedundancy
		mw.Obs = sys.Obs
		mw.Admission = sys.Admission
		if sys.Obs != nil {
			// The gauges close over the node, not the middleware: a node
			// restart installs a fresh middleware and the metrics must
			// follow it.
			sys.Obs.RegisterQueueDepth(i, "hrt", func() int { return node.MW.hrtQueuedTotal() })
			sys.Obs.RegisterQueueDepth(i, "srt", func() int { return node.MW.srtQueuedTotal() })
			sys.Obs.RegisterQueueDepth(i, "nrt", func() int { return node.MW.nrtQueuedTotal() })
			sys.Obs.RegisterErrorState(i,
				func() int { return ctrl.TEC() },
				func() int { return ctrl.REC() },
				func() int { return int(ctrl.State()) })
		}
		sys.Nodes = append(sys.Nodes, node)
		sys.Clocks = append(sys.Clocks, clk)
	}

	if sys.Admission != nil {
		// Re-evaluate the admitted set when the wire stops behaving like
		// the planned error model: fault-confinement state transitions
		// (error-passive, bus-off — degradations only) and guardian
		// isolation. Both hooks chain whatever was installed before them.
		prevES := bus.OnErrorState
		bus.OnErrorState = func(ctrl int, old, new can.ErrorState, at sim.Time) {
			if prevES != nil {
				prevES(ctrl, old, new, at)
			}
			if new > old {
				sys.reviseAdmission()
			}
		}
		prevTrace := bus.Trace
		bus.Trace = func(e can.TraceEvent) {
			if prevTrace != nil {
				prevTrace(e)
			}
			if e.Kind == can.TraceGuardIsolate {
				sys.reviseAdmission()
			}
		}
	}

	if cfg.Sync.Period > 0 {
		sys.Syncer = clock.NewSyncer(k, bus, cfg.Sync, cfg.Master, sys.Clocks)
		if len(cfg.SyncBackups) > 0 {
			sys.Syncer.SetBackups(cfg.SyncBackups)
		}
		sys.Syncer.OnTakeover = func(m int, at sim.Time) {
			sys.Obs.ControlPlane(obs.StageMasterTakeover, m, at, "time master")
		}
		sys.Syncer.OnHoldover = func(n int, enter bool, at sim.Time) {
			stage := obs.StageHoldoverExit
			if enter {
				stage = obs.StageHoldoverEnter
			}
			sys.Obs.ControlPlane(stage, n, at, "")
		}
		for _, n := range sys.Nodes {
			n.MW.Syncer = sys.Syncer
			n.MW.Health = sys.Syncer
		}
		sys.Syncer.Start()
	}
	return sys, nil
}

// Node returns station i.
func (s *System) Node(i int) *Node { return s.Nodes[i] }

// Run advances the simulation to the given kernel time.
func (s *System) Run(until sim.Time) { s.K.Run(until) }

// Stop halts all middleware activity so the event queue can drain.
func (s *System) Stop() {
	for _, n := range s.Nodes {
		n.MW.Stop()
	}
}

// TotalCounters sums the per-node middleware counters.
func (s *System) TotalCounters() Counters {
	var t Counters
	for _, n := range s.Nodes {
		c := n.MW.Counters()
		t.PublishedHRT += c.PublishedHRT
		t.PublishedSRT += c.PublishedSRT
		t.PublishedNRT += c.PublishedNRT
		t.DeliveredHRT += c.DeliveredHRT
		t.DeliveredSRT += c.DeliveredSRT
		t.DeliveredNRT += c.DeliveredNRT
		t.SlotsFired += c.SlotsFired
		t.SlotsUnused += c.SlotsUnused
		t.RedundantCopiesSent += c.RedundantCopiesSent
		t.CopiesSuppressed += c.CopiesSuppressed
		t.DuplicatesDropped += c.DuplicatesDropped
		t.SlotMissed += c.SlotMissed
		t.DeadlineMissed += c.DeadlineMissed
		t.Expired += c.Expired
		t.Shed += c.Shed
		t.Overflows += c.Overflows
		t.TxFailures += c.TxFailures
		t.FragErrors += c.FragErrors
		t.LateHRTDeliveries += c.LateHRTDeliveries
		t.PromotionsApplied += c.PromotionsApplied
		t.HoldoverWidened += c.HoldoverWidened
		t.AdmissionAdmitted += c.AdmissionAdmitted
		t.AdmissionRejected += c.AdmissionRejected
		t.AdmissionShed += c.AdmissionShed
	}
	return t
}

// Utilization returns the fraction of elapsed time the bus was busy.
func (s *System) Utilization() float64 {
	if s.K.Now() == 0 {
		return 0
	}
	return float64(s.Bus.Stats().BusyTime) / float64(s.K.Now())
}
