package core

import (
	"testing"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/obs"
	"canec/internal/sim"
)

// crashCalendar reserves one periodic slot for subjTemp published by
// node 1 (node 0 hosts the binding agent and cannot crash).
func crashCalendar(t *testing.T) *calendar.Calendar {
	t.Helper()
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 1, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestLifecycleCrashRestartRecovery drives the full whole-node story on an
// ideal-clock system: crash mid-run, watchdog failure, restart with
// binding re-join and re-announcement, calendar re-entry at the current
// phase, watchdog back to alive, deliveries again at exact deadlines.
func TestLifecycleCrashRestartRecovery(t *testing.T) {
	cal := crashCalendar(t)
	sys, err := NewSystem(SystemConfig{
		Nodes:    3,
		Seed:     1,
		Calendar: cal,
		Epoch:    1 * sim.Millisecond,
		Observe:  obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLifecycle(sys)

	var pub *HRTEC
	announce := func(mw *Middleware) {
		c, err := mw.HRTEC(subjTemp)
		if err != nil {
			t.Fatalf("HRTEC: %v", err)
		}
		if err := c.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			t.Fatalf("Announce: %v", err)
		}
		pub = c
	}
	announce(sys.Node(1).MW)
	lc.OnRestart = func(n int, mw *Middleware) {
		if n == 1 {
			announce(mw)
		}
	}

	sub, _ := sys.Node(2).MW.HRTEC(subjTemp)
	var rounds []int64
	var times []sim.Time
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(ev Event, di DeliveryInfo) {
			rounds = append(rounds, int64(ev.Payload[0]))
			times = append(times, di.DeliveredAt)
			if di.Late {
				t.Errorf("round %d delivered late", ev.Payload[0])
			}
		}, nil)
	var wdStates []NodeState
	sys.Node(2).MW.Watchdog(3, func(p can.TxNode, s NodeState, _ sim.Time) {
		if p == 1 {
			wdStates = append(wdStates, s)
		}
	})

	for r := int64(0); r < 20; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			if !lc.Down(1) {
				_ = pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(r)}})
			}
		})
	}
	sys.K.At(sys.Cfg.Epoch+5*cal.Round+sim.Time(1*sim.Millisecond), func() {
		if err := lc.Crash(1); err != nil {
			t.Errorf("Crash: %v", err)
		}
	})
	sys.K.At(sys.Cfg.Epoch+10*cal.Round+sim.Time(1*sim.Millisecond), func() {
		if err := lc.Restart(1); err != nil {
			t.Errorf("Restart: %v", err)
		}
	})
	sys.Run(sys.Cfg.Epoch + 20*cal.Round)

	// Rounds 0..5 ride their slots before the crash; 6..9 are lost to the
	// outage (round 10's publish still hits the stopped middleware during
	// recovery); 11..19 flow after recovery.
	want := []int64{0, 1, 2, 3, 4, 5, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	if len(rounds) != len(want) {
		t.Fatalf("delivered rounds = %v, want %v", rounds, want)
	}
	slot := cal.Slots[0]
	for i, r := range want {
		if rounds[i] != r {
			t.Fatalf("delivered rounds = %v, want %v", rounds, want)
		}
		exact := sys.Cfg.Epoch + sim.Time(r)*cal.Round + slot.Deadline(cal.Cfg)
		if times[i] != exact {
			t.Fatalf("round %d delivered at %v, want exactly %v (calendar re-entry at correct phase)", r, times[i], exact)
		}
	}

	// Watchdog on the subscriber: suspected → failed during the outage,
	// alive again on the first post-recovery delivery.
	if len(wdStates) != 3 || wdStates[0] != NodeSuspected || wdStates[1] != NodeFailed || wdStates[2] != NodeAlive {
		t.Fatalf("watchdog transitions = %v, want [suspected failed alive]", wdStates)
	}

	// The lifecycle is visible in the trace.
	var sawDown, sawRestart, sawUp bool
	for _, rec := range sys.Obs.Records() {
		if rec.Node != 1 {
			continue
		}
		switch rec.Stage {
		case obs.StageNodeDown:
			sawDown = true
		case obs.StageNodeRestart:
			sawRestart = true
		case obs.StageNodeUp:
			sawUp = true
		}
	}
	if !sawDown || !sawRestart || !sawUp {
		t.Fatalf("lifecycle stages missing from trace: down=%v restart=%v up=%v", sawDown, sawRestart, sawUp)
	}
	if lc.CrashCount != 1 || lc.RestartCount != 1 {
		t.Fatalf("counts = %d/%d", lc.CrashCount, lc.RestartCount)
	}
}

// TestLifecycleRecoveryWithClockSync exercises the same path with drifting
// clocks: the restarted node's cold-booted clock must wait for the next
// synchronization round before re-entering the calendar.
func TestLifecycleRecoveryWithClockSync(t *testing.T) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 1, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	sync := clock.DefaultSyncConfig()
	sync.Period = 10 * sim.Millisecond
	sys, err := NewSystem(SystemConfig{
		Nodes:            3,
		Seed:             7,
		Calendar:         cal,
		Sync:             sync,
		MaxDriftPPM:      50,
		MaxInitialOffset: 20 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLifecycle(sys)

	var pub *HRTEC
	announce := func(mw *Middleware) {
		c, _ := mw.HRTEC(subjTemp)
		if err := c.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			t.Fatalf("Announce: %v", err)
		}
		pub = c
	}
	announce(sys.Node(1).MW)
	lc.OnRestart = func(n int, mw *Middleware) { announce(mw) }

	sub, _ := sys.Node(2).MW.HRTEC(subjTemp)
	var before, after int
	restarted := false
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(ev Event, di DeliveryInfo) {
			if restarted {
				after++
			} else {
				before++
			}
		}, nil)
	wd := sys.Node(2).MW.Watchdog(3, nil)

	for r := int64(0); r < 20; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-200*sim.Microsecond, func() {
			if !lc.Down(1) {
				_ = pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
			}
		})
	}
	sys.K.At(sys.Cfg.Epoch+5*cal.Round+sim.Time(sim.Millisecond), func() { _ = lc.Crash(1) })
	sys.K.At(sys.Cfg.Epoch+10*cal.Round+sim.Time(sim.Millisecond), func() {
		_ = lc.Restart(1)
		restarted = true
	})
	sys.Run(sys.Cfg.Epoch + 20*cal.Round)

	if before < 5 {
		t.Fatalf("pre-crash deliveries = %d, want ≥ 5", before)
	}
	if after < 5 {
		t.Fatalf("post-restart deliveries = %d, want ≥ 5 (recovery incl. re-sync must complete)", after)
	}
	if wd.State(1) != NodeAlive {
		t.Fatalf("final watchdog state = %v, want alive", wd.State(1))
	}
	var sawUp bool
	for _, rec := range sys.Obs.Records() {
		if rec.Stage == obs.StageNodeUp && rec.Node == 1 {
			sawUp = true
		}
	}
	if !sawUp {
		t.Fatal("node_up missing from trace")
	}
}

// TestLifecycleGuards pins the manager's error paths.
func TestLifecycleGuards(t *testing.T) {
	cal := crashCalendar(t)
	sys := idealSystem(t, 3, cal)
	lc := NewLifecycle(sys)
	if err := lc.Crash(0); err == nil {
		t.Fatal("crashing the agent station must fail")
	}
	if err := lc.Restart(1); err == nil {
		t.Fatal("restarting a running station must fail")
	}
	if err := lc.Crash(1); err != nil {
		t.Fatal(err)
	}
	if !lc.Down(1) {
		t.Fatal("not down after crash")
	}
	if err := lc.Crash(1); err == nil {
		t.Fatal("double crash must fail")
	}
}

// TestWatchdogOnChangeOrderInterleavedPublishers pins the OnChange firing
// order when two monitored publishers fail and recover with overlapping
// outages (satellite of the fault-model issue).
func TestWatchdogOnChangeOrderInterleavedPublishers(t *testing.T) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 0, Payload: 8, Periodic: true},
		calendar.Slot{Subject: uint64(subjDiag), Publisher: 1, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	sys := idealSystem(t, 3, cal)
	pub0, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub0.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	pub1, _ := sys.Node(1).MW.HRTEC(subjDiag)
	pub1.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	subT, _ := sys.Node(2).MW.HRTEC(subjTemp)
	subT.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
	subD, _ := sys.Node(2).MW.HRTEC(subjDiag)
	subD.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)

	type change struct {
		pub   can.TxNode
		state NodeState
		at    sim.Time
	}
	var changes []change
	sys.Node(2).MW.Watchdog(2, func(p can.TxNode, s NodeState, at sim.Time) {
		changes = append(changes, change{p, s, at})
	})

	publish := func(c *HRTEC, subj uint64, r int64) {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			_ = c.Publish(Event{Payload: []byte{byte(r)}})
		})
	}
	// Publisher 0 is silent in rounds 3..8, publisher 1 in rounds 5..10.
	for r := int64(0); r < 15; r++ {
		if r < 3 || r > 8 {
			publish(pub0, uint64(subjTemp), r)
		}
		if r < 5 || r > 10 {
			publish(pub1, uint64(subjDiag), r)
		}
	}
	sys.Run(sys.Cfg.Epoch + 15*cal.Round)

	want := []change{
		{0, NodeSuspected, 0}, // pub0 first miss, round 3
		{0, NodeFailed, 0},    // threshold 2, round 4
		{1, NodeSuspected, 0}, // pub1 first miss, round 5
		{1, NodeFailed, 0},    // round 6
		{0, NodeAlive, 0},     // pub0 resumes, round 9
		{1, NodeAlive, 0},     // pub1 resumes, round 11
	}
	if len(changes) != len(want) {
		t.Fatalf("transitions = %+v", changes)
	}
	for i, w := range want {
		if changes[i].pub != w.pub || changes[i].state != w.state {
			t.Fatalf("transition %d = %+v, want pub %d %v", i, changes[i], w.pub, w.state)
		}
		if i > 0 && changes[i].at < changes[i-1].at {
			t.Fatalf("transition %d at %v before predecessor at %v", i, changes[i].at, changes[i-1].at)
		}
	}
}
