package core

import (
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/sim"
)

// TestSoakLongRun drives the full stack — synchronization, drifting
// clocks, a planned multi-rate HRT calendar, SRT traffic, NRT bulk and
// random faults within the assumption — for five virtual minutes (30k
// rounds) and checks the cumulative invariants: no HRT misses or late
// deliveries, conservation between published and delivered counts, and a
// still-converged clock ensemble at the end.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("five virtual minutes of full-stack traffic")
	}
	cfg := calendar.DefaultConfig()
	cfg.OmissionDegree = 2
	cal, err := calendar.Plan(cfg, []calendar.Request{
		{Subject: 0xF1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0xF2, Publisher: 1, Payload: 8, Period: 20 * sim.Millisecond, Periodic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{
		Nodes: 6, Seed: 77, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * sim.Microsecond,
		Injector:         can.RandomErrors{Rate: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 5 * 60 * sim.Second
	end := sys.Cfg.Epoch + horizon

	// HRT publishers keyed to their slots' activation patterns.
	publishers := []struct {
		subj uint64
		node int
	}{{0xF1, 0}, {0xF2, 1}}
	late, missed := 0, 0
	for _, p := range publishers {
		p := p
		slot := cal.SlotsForSubject(p.subj)[0]
		ch, err := sys.Node(p.node).MW.HRTEC(binding.Subject(p.subj))
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			t.Fatal(err)
		}
		var loop func(r int64)
		loop = func(r int64) {
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + slot.Ready - 300*sim.Microsecond
			at := sys.Clocks[p.node].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				ch.Publish(Event{Subject: binding.Subject(p.subj), Payload: []byte{byte(r)}})
				loop(slot.NextActive(r + 1))
			})
			_ = r
		}
		loop(slot.NextActive(0))
		sub, err := sys.Node(2).MW.HRTEC(binding.Subject(p.subj))
		if err != nil {
			t.Fatal(err)
		}
		sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
			func(_ Event, di DeliveryInfo) {
				if di.Late {
					late++
				}
			},
			func(e Exception) {
				if e.Kind == ExcSlotMissed {
					missed++
				}
			})
	}

	// SRT chatter from three nodes.
	for i := 3; i < 6; i++ {
		i := i
		ch, err := sys.Node(i).MW.SRTEC(binding.Subject(0xE0 + i))
		if err != nil {
			t.Fatal(err)
		}
		ch.Announce(ChannelAttrs{}, nil)
		sub, err := sys.Node((i + 1) % 3).MW.SRTEC(binding.Subject(0xE0 + i))
		if err != nil {
			t.Fatal(err)
		}
		sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
		var loop func()
		loop = func() {
			if sys.K.Now() >= end {
				return
			}
			now := sys.Node(i).MW.LocalTime()
			ch.Publish(Event{Subject: binding.Subject(0xE0 + i), Payload: make([]byte, 8),
				Attrs: EventAttrs{Deadline: now + 10*sim.Millisecond, Expiration: now + 40*sim.Millisecond}})
			sys.K.After(sys.K.RNG().ExpDuration(5*sim.Millisecond), loop)
		}
		sys.K.At(sys.Cfg.Epoch, loop)
	}

	// NRT bulk drip.
	bulk, err := sys.Node(5).MW.NRTEC(binding.Subject(0xEE))
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Announce(ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		t.Fatal(err)
	}
	bsub, _ := sys.Node(0).MW.NRTEC(binding.Subject(0xEE))
	bsub.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= end {
			return
		}
		if bulk.QueuedChains() == 0 {
			bulk.Publish(Event{Subject: binding.Subject(0xEE), Payload: make([]byte, 2048)})
		}
		sys.K.After(50*sim.Millisecond, feed)
	}
	sys.K.At(sys.Cfg.Epoch, feed)

	sys.Run(end - 600*sim.Microsecond)

	c := sys.TotalCounters()
	if late != 0 || missed != 0 {
		t.Fatalf("soak: late=%d missed=%d over %v", late, missed, horizon)
	}
	// HRT conservation: every fired slot delivered exactly once.
	if c.DeliveredHRT != c.SlotsFired {
		t.Fatalf("soak: fired %d slots, delivered %d", c.SlotsFired, c.DeliveredHRT)
	}
	if c.SlotsFired < 40_000 { // 30k + 15k occurrences minus tail
		t.Fatalf("soak: only %d slot occurrences", c.SlotsFired)
	}
	// SRT conservation: delivered + expired + still-queued == published.
	if c.DeliveredSRT+c.Expired > c.PublishedSRT {
		t.Fatalf("soak: SRT counts inconsistent: %+v", c)
	}
	if got := float64(c.DeliveredSRT) / float64(c.PublishedSRT); got < 0.99 {
		t.Fatalf("soak: only %.3f of SRT events delivered", got)
	}
	// Clocks still converged after 5 minutes.
	bound := clock.PrecisionBound(clock.DefaultSyncConfig(), 100)
	if sk := clock.MaxSkew(sys.K.Now(), sys.Clocks); sk > bound {
		t.Fatalf("soak: clock ensemble diverged to %v (bound %v)", sk, bound)
	}
	if c.FragErrors != 0 {
		t.Fatalf("soak: %d fragmentation errors without inconsistent faults", c.FragErrors)
	}
}
