package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/obs"
	"canec/internal/sim"
)

// Lifecycle drives whole-node crash and recovery. A crash detaches the
// station's controller from the bus (flushing its transmit queues and
// truncating a frame on the wire into an error frame); a restart walks the
// full cold-boot recovery path the paper's dynamic configuration implies:
//
//  1. the controller re-attaches with power-up filters,
//  2. a fresh middleware replaces the crashed one (all host state is lost),
//  3. the node re-joins through the binding protocol and gets its original
//     TxNode back (the agent keeps uid→node assignments),
//  4. previously used subjects are re-bound over the wire,
//  5. the cold-booted clock waits for the next synchronization round,
//  6. OnRestart lets the application re-create its channels, which enter
//     the calendar at the current round phase (Middleware.startRound).
//
// The binding agent initially lives on station 0 (and, by convention, the
// sync master). Neither role pins its station forever: EnableStandby arms a
// hot-standby binding agent on another station, and ranked sync backups
// (SystemConfig.SyncBackups) arm time-master failover. A station hosting an
// active control-plane role can only be crashed while a live standby or
// backup exists to take the role over.
type Lifecycle struct {
	sys            *System
	agent          *binding.Agent
	agentStation   int
	standby        *binding.StandbyAgent
	standbyStation int // -1 while no standby is armed
	hbCfg          binding.HeartbeatConfig
	down           map[int]*crashRecord

	// OnRestart, if set, is invoked once a restarted node is fully
	// recovered (re-joined, re-bound, re-synced): the application
	// re-creates its channels on the fresh middleware, exactly as its
	// start-up code would.
	OnRestart func(node int, mw *Middleware)

	// OnRestartError, if set, is invoked when a restarting node exhausts
	// its bounded re-join attempts (binding.ErrAgentUnreachable). Recovery
	// is not abandoned: the node keeps listening and re-joins in the
	// background once the agent is heard again.
	OnRestartError func(node int, err error)

	// CrashCount / RestartCount tally completed transitions;
	// AgentTakeovers counts standby promotions to the agent role.
	CrashCount, RestartCount, AgentTakeovers int

	// Bus-off recovery supervisor state (EnableBusOffRecovery):
	// BusOffCount / BusOffRecovered tally bus-off entries and completed
	// supervised rejoins across all stations.
	busOffPol                    BusOffPolicy
	busOffArmed                  bool
	busOffStreak                 map[int]int      // consecutive bus-offs per station
	busOffUpAt                   map[int]sim.Time // last completed recovery per station
	BusOffCount, BusOffRecovered int
}

// crashRecord is what survives a crash outside the node: the subjects the
// station had bound (for over-the-wire re-binding), when it went down, and
// whether it was the acting binding agent at the time (so its restart
// re-arms it as the new standby).
type crashRecord struct {
	channels []ChannelInfo
	at       sim.Time
	wasAgent bool
}

// uidOf derives the stable hardware UID of station i — the identity the
// binding agent keys node assignments on across reboots.
func uidOf(i int) uint64 { return 0x00C0FFEE00 + uint64(i) }

// recoveryPrio carries the join/bind handshake of a recovering station and
// the agent's replies. The binding default (lowest priority) assumes a
// lightly loaded bus; during recovery that would let saturated equal-priority
// NRT bulk traffic starve the handshake forever, because the client joins
// under a temporary high TxNode that loses every arbitration tie. The top of
// the SRT band preempts application traffic only for the handful of
// handshake frames a recovery needs.
var recoveryPrio = DefaultBands().SRT.Min

// rejoinFallback is the background re-join cadence of a node whose bounded
// join attempts failed: it retries either when the agent is heard on the
// wire again (heartbeat or any reply) or, failing that signal, on this
// slow timer.
const rejoinFallback = 500 * sim.Millisecond

// NewLifecycle installs a lifecycle manager: it hosts the binding agent on
// station 0 backed by the system's shared binding table, and pre-assigns
// every station's uid→TxNode so re-joins are stable.
func NewLifecycle(sys *System) *Lifecycle {
	lc := &Lifecycle{sys: sys, down: make(map[int]*crashRecord), standbyStation: -1}
	lc.agent = binding.NewAgent(sys.K, sys.Nodes[0].Ctrl)
	lc.agent.Table = sys.Bindings
	lc.agent.Prio = recoveryPrio
	for i := range sys.Nodes {
		lc.agent.Preassign(uidOf(i), can.TxNode(i))
	}
	sys.Nodes[0].MW.ConfigRx = lc.agent.HandleFrame
	if sys.Syncer != nil {
		// The syncer must not elect a crashed backup, and a dead master's
		// emission loop must go quiet instead of queueing zombie frames.
		sys.Syncer.Down = lc.Down
	}
	return lc
}

// Agent returns the acting binding agent (the standby's replica after a
// takeover).
func (lc *Lifecycle) Agent() *binding.Agent { return lc.agent }

// AgentStation returns the station currently hosting the binding agent.
func (lc *Lifecycle) AgentStation() int { return lc.agentStation }

// Standby returns the armed standby agent (nil before EnableStandby and
// between a takeover and the old agent's restart).
func (lc *Lifecycle) Standby() *binding.StandbyAgent { return lc.standby }

// EnableStandby arms a hot-standby binding agent on the given station. The
// acting agent starts heartbeating and checkpointing its state; the standby
// replicates passively and takes the agent role over when the heartbeats
// stop for longer than cfg.Period·cfg.MissLimit. The zero cfg selects
// DefaultHeartbeatConfig.
func (lc *Lifecycle) EnableStandby(station int, cfg binding.HeartbeatConfig) error {
	if station < 0 || station >= len(lc.sys.Nodes) {
		return fmt.Errorf("core: standby station %d of %d", station, len(lc.sys.Nodes))
	}
	if station == lc.agentStation {
		return fmt.Errorf("core: station %d already hosts the acting agent", station)
	}
	if lc.down[station] != nil {
		return fmt.Errorf("core: standby station %d is down", station)
	}
	if lc.standby != nil && !lc.standby.Active() {
		return fmt.Errorf("core: station %d is already the standby", lc.standbyStation)
	}
	lc.hbCfg = cfg
	lc.installStandby(station)
	lc.agent.StartHeartbeat(cfg)
	return nil
}

// installStandby builds the replica (seeded from the current authoritative
// state, as an off-line configuration distribution would) and arms its
// watchdog. The replica keeps converging on-line through the heartbeat and
// checkpoint stream.
func (lc *Lifecycle) installStandby(station int) {
	sys := lc.sys
	replica := binding.NewAgent(sys.K, sys.Nodes[station].Ctrl)
	replica.Table = sys.Bindings.Clone()
	replica.Prio = recoveryPrio
	for i := range sys.Nodes {
		replica.Preassign(uidOf(i), can.TxNode(i))
	}
	sa := binding.NewStandbyAgent(sys.K, replica, lc.hbCfg)
	sa.OnTakeover = func(at sim.Time) {
		lc.agent = sa.Agent()
		lc.agentStation = station
		lc.standby = nil
		lc.standbyStation = -1
		lc.AgentTakeovers++
		sys.Obs.ControlPlane(obs.StageAgentTakeover, station, at, "binding agent")
	}
	sys.Nodes[station].MW.ConfigRx = sa.HandleFrame
	lc.standby = sa
	lc.standbyStation = station
	sa.Start()
}

// Down reports whether station i is currently crashed.
func (lc *Lifecycle) Down(i int) bool { return lc.down[i] != nil }

// standbyAlive reports whether an armed, not-yet-promoted standby is up.
func (lc *Lifecycle) standbyAlive() bool {
	return lc.standby != nil && lc.down[lc.standbyStation] == nil
}

// backupAlive reports whether a ranked sync backup other than the acting
// master is up.
func (lc *Lifecycle) backupAlive(master int) bool {
	if lc.sys.Syncer == nil {
		return false
	}
	for _, b := range lc.sys.Syncer.Backups() {
		if b != master && lc.down[b] == nil {
			return true
		}
	}
	return false
}

// Crash takes station i down: middleware activity stops, queued HRT events
// are lost (their traces closed with a node_crash drop), and the
// controller detaches from the bus — a frame it has on the wire is
// truncated into an error frame, queued requests vanish without callbacks.
// The station hosting the acting binding agent (or the acting time master)
// can only be crashed while a live standby (or ranked backup) exists to
// take the role over.
func (lc *Lifecycle) Crash(i int) error {
	if lc.down[i] != nil {
		return fmt.Errorf("core: station %d is already down", i)
	}
	wasAgent := i == lc.agentStation
	if wasAgent && !lc.standbyAlive() {
		return fmt.Errorf("core: station %d hosts the binding agent and no live standby is armed; cannot crash it", i)
	}
	if lc.sys.Syncer != nil && i == lc.sys.Syncer.Master && !lc.backupAlive(i) {
		return fmt.Errorf("core: station %d is the acting time master and no live backup exists; cannot crash it", i)
	}
	node := lc.sys.Nodes[i]
	now := lc.sys.K.Now()
	rec := &crashRecord{channels: node.MW.Channels(), at: now, wasAgent: wasAgent}

	// Close the traces of events that die in the crashed node's queues:
	// the host memory holding them is gone.
	for _, ch := range node.MW.channels {
		for _, ev := range ch.hrtQueue {
			node.MW.Obs.Emit(ev.traceID, obs.StageDropped, HRT.String(), i,
				uint64(ch.subject), now, "node_crash")
		}
		ch.hrtQueue = nil
	}

	node.MW.Stop()
	node.Ctrl.Detach()
	lc.down[i] = rec
	lc.CrashCount++
	lc.sys.Obs.NodeLifecycle(obs.StageNodeDown, i, now, "")
	return nil
}

// Restart brings station i back up and drives the full recovery path. It
// returns immediately; recovery proceeds in virtual time (join timeouts,
// binding round-trips, the next sync round) and ends with the OnRestart
// hook and a node_up trace record.
func (lc *Lifecycle) Restart(i int) error {
	rec := lc.down[i]
	if rec == nil {
		return fmt.Errorf("core: station %d is not down", i)
	}
	delete(lc.down, i)
	sys := lc.sys
	node := sys.Nodes[i]
	now := sys.K.Now()
	sys.Obs.NodeLifecycle(obs.StageNodeRestart, i, now, "")

	// Power-on: the controller re-attaches, a fresh middleware replaces
	// the crashed one (NewMiddleware re-installs the receive path and the
	// two system filters), and the cold-booted clock reads an arbitrary
	// value until synchronization pulls it back. A power cycle clears
	// bus-off — the error counters live in the controller's volatile state.
	if node.Ctrl.State() == can.BusOff {
		node.Ctrl.Recover()
	}
	node.Ctrl.Reattach()
	mw := NewMiddleware(sys.K, node, sys.Cfg.Bands)
	mw.Cal = sys.Cfg.Calendar
	mw.Epoch = sys.Cfg.Epoch
	mw.SuppressRedundancy = !sys.Cfg.NoSuppressRedundancy
	mw.Obs = sys.Obs
	if sys.Syncer != nil {
		mw.Syncer = sys.Syncer
		mw.Health = sys.Syncer
		node.Clock.SetTo(now, 0) // cold RTC: re-sync will correct it
	}
	client := binding.NewClient(sys.K, node.Ctrl)
	client.Prio = recoveryPrio
	mw.ConfigRx = client.HandleFrame
	if i == lc.standbyStation && lc.standby != nil {
		// A rebooting standby station keeps snooping while it recovers:
		// without the tap its watchdog would mistake its own recovery
		// window for agent silence and promote a stale replica.
		sa := lc.standby
		mw.ConfigRx = func(f can.Frame, at sim.Time) {
			client.HandleFrame(f, at)
			sa.HandleFrame(f, at)
		}
	}

	lc.rejoin(i, node, mw, client, rec)
	return nil
}

// rejoin runs the join protocol with the client's bounded retry policy,
// then re-binds the subjects the station used before the crash. Exhausted
// attempts surface through OnRestartError and arm a background retry.
func (lc *Lifecycle) rejoin(i int, node *Node, mw *Middleware, client *binding.Client, rec *crashRecord) {
	client.Join(uidOf(i), func(_ can.TxNode, err error) {
		if mw.stopped || node.MW != mw {
			return // crashed again mid-recovery
		}
		if err != nil {
			lc.joinFailed(i, node, mw, client, rec, err)
			return
		}
		lc.rebind(i, node, mw, client, rec, 0)
	})
}

// joinFailed reports the typed error and keeps recovery alive in the
// background: the next agent frame the client hears (heartbeat or any
// reply) restarts the join immediately, with a slow fallback timer for
// configurations where the agent never volunteers traffic.
func (lc *Lifecycle) joinFailed(i int, node *Node, mw *Middleware, client *binding.Client, rec *crashRecord, err error) {
	if lc.OnRestartError != nil {
		lc.OnRestartError(i, err)
	}
	retried := false
	retry := func() {
		if retried || mw.stopped || node.MW != mw {
			return
		}
		retried = true
		client.OnAgentAlive = nil
		lc.rejoin(i, node, mw, client, rec)
	}
	client.OnAgentAlive = retry
	lc.sys.K.After(rejoinFallback, func() { retry() })
}

// rebind fetches the etag of each previously-bound subject over the wire,
// one at a time, installing the answers as fixed entries in the fresh
// middleware's private table. The agent serves them from the authoritative
// shared table, so the recovered node ends up with exactly the bindings it
// had — obtained honestly through the protocol, not by peeking at shared
// state.
func (lc *Lifecycle) rebind(i int, node *Node, mw *Middleware, client *binding.Client, rec *crashRecord, idx int) {
	if mw.stopped || node.MW != mw {
		return
	}
	if idx >= len(rec.channels) {
		lc.resync(i, node, mw, rec)
		return
	}
	info := rec.channels[idx]
	client.Bind(info.Subject, func(etag can.Etag, err error) {
		if err == nil {
			err = mw.Bindings.BindFixed(info.Subject, etag)
		}
		_ = err // an unbindable subject is skipped; the app will re-bind on demand
		lc.rebind(i, node, mw, client, rec, idx+1)
	})
}

// resync waits for the next clock adjustment (when synchronization runs)
// before declaring the node up: calendar re-entry needs a clock that is
// back inside the precision bound, or slots would fire at cold-boot times.
func (lc *Lifecycle) resync(i int, node *Node, mw *Middleware, rec *crashRecord) {
	finish := func() {
		if mw.stopped || node.MW != mw {
			return
		}
		lc.RestartCount++
		if rec.wasAgent && lc.standby == nil && i != lc.agentStation {
			// The deposed agent is back: it re-arms as the new standby,
			// re-syncing its replica through the checkpoint stream.
			lc.installStandby(i)
		} else if i == lc.standbyStation && lc.standby != nil {
			// The standby station rebooted: re-wire its frame tap onto the
			// fresh middleware (its replica converges via checkpoints).
			node.MW.ConfigRx = lc.standby.HandleFrame
		}
		if lc.OnRestart != nil {
			lc.OnRestart(i, mw)
		}
		lc.sys.Obs.NodeLifecycle(obs.StageNodeUp, i, lc.sys.K.Now(),
			fmt.Sprintf("outage %v", lc.sys.K.Now()-rec.at))
	}
	if lc.sys.Syncer == nil {
		finish()
		return
	}
	node.Clock.AfterNextAdjustment(finish)
}
