package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/obs"
	"canec/internal/sim"
)

// Lifecycle drives whole-node crash and recovery. A crash detaches the
// station's controller from the bus (flushing its transmit queues and
// truncating a frame on the wire into an error frame); a restart walks the
// full cold-boot recovery path the paper's dynamic configuration implies:
//
//  1. the controller re-attaches with power-up filters,
//  2. a fresh middleware replaces the crashed one (all host state is lost),
//  3. the node re-joins through the binding protocol and gets its original
//     TxNode back (the agent keeps uid→node assignments),
//  4. previously used subjects are re-bound over the wire,
//  5. the cold-booted clock waits for the next synchronization round,
//  6. OnRestart lets the application re-create its channels, which enter
//     the calendar at the current round phase (Middleware.startRound).
//
// Station 0 hosts the binding agent (and, by convention, the sync master),
// so it cannot be crashed through this manager.
type Lifecycle struct {
	sys   *System
	agent *binding.Agent
	down  map[int]*crashRecord

	// OnRestart, if set, is invoked once a restarted node is fully
	// recovered (re-joined, re-bound, re-synced): the application
	// re-creates its channels on the fresh middleware, exactly as its
	// start-up code would.
	OnRestart func(node int, mw *Middleware)

	// CrashCount / RestartCount tally completed transitions.
	CrashCount, RestartCount int
}

// crashRecord is what survives a crash outside the node: the subjects the
// station had bound (for over-the-wire re-binding) and when it went down.
type crashRecord struct {
	channels []ChannelInfo
	at       sim.Time
}

// uidOf derives the stable hardware UID of station i — the identity the
// binding agent keys node assignments on across reboots.
func uidOf(i int) uint64 { return 0x00C0FFEE00 + uint64(i) }

// recoveryPrio carries the join/bind handshake of a recovering station and
// the agent's replies. The binding default (lowest priority) assumes a
// lightly loaded bus; during recovery that would let saturated equal-priority
// NRT bulk traffic starve the handshake forever, because the client joins
// under a temporary high TxNode that loses every arbitration tie. The top of
// the SRT band preempts application traffic only for the handful of
// handshake frames a recovery needs.
var recoveryPrio = DefaultBands().SRT.Min

// NewLifecycle installs a lifecycle manager: it hosts the binding agent on
// station 0 backed by the system's shared binding table, and pre-assigns
// every station's uid→TxNode so re-joins are stable.
func NewLifecycle(sys *System) *Lifecycle {
	lc := &Lifecycle{sys: sys, down: make(map[int]*crashRecord)}
	lc.agent = binding.NewAgent(sys.K, sys.Nodes[0].Ctrl)
	lc.agent.Table = sys.Bindings
	lc.agent.Prio = recoveryPrio
	for i := range sys.Nodes {
		lc.agent.Preassign(uidOf(i), can.TxNode(i))
	}
	sys.Nodes[0].MW.ConfigRx = lc.agent.HandleFrame
	return lc
}

// Agent returns the hosted binding agent.
func (lc *Lifecycle) Agent() *binding.Agent { return lc.agent }

// Down reports whether station i is currently crashed.
func (lc *Lifecycle) Down(i int) bool { return lc.down[i] != nil }

// Crash takes station i down: middleware activity stops, queued HRT events
// are lost (their traces closed with a node_crash drop), and the
// controller detaches from the bus — a frame it has on the wire is
// truncated into an error frame, queued requests vanish without callbacks.
func (lc *Lifecycle) Crash(i int) error {
	if i == 0 {
		return fmt.Errorf("core: station 0 hosts the binding agent and sync master; cannot crash it")
	}
	if lc.down[i] != nil {
		return fmt.Errorf("core: station %d is already down", i)
	}
	node := lc.sys.Nodes[i]
	now := lc.sys.K.Now()
	rec := &crashRecord{channels: node.MW.Channels(), at: now}

	// Close the traces of events that die in the crashed node's queues:
	// the host memory holding them is gone.
	for _, ch := range node.MW.channels {
		for _, ev := range ch.hrtQueue {
			node.MW.Obs.Emit(ev.traceID, obs.StageDropped, HRT.String(), i,
				uint64(ch.subject), now, "node_crash")
		}
		ch.hrtQueue = nil
	}

	node.MW.Stop()
	node.Ctrl.Detach()
	lc.down[i] = rec
	lc.CrashCount++
	lc.sys.Obs.NodeLifecycle(obs.StageNodeDown, i, now, "")
	return nil
}

// Restart brings station i back up and drives the full recovery path. It
// returns immediately; recovery proceeds in virtual time (join timeouts,
// binding round-trips, the next sync round) and ends with the OnRestart
// hook and a node_up trace record.
func (lc *Lifecycle) Restart(i int) error {
	rec := lc.down[i]
	if rec == nil {
		return fmt.Errorf("core: station %d is not down", i)
	}
	delete(lc.down, i)
	sys := lc.sys
	node := sys.Nodes[i]
	now := sys.K.Now()
	sys.Obs.NodeLifecycle(obs.StageNodeRestart, i, now, "")

	// Power-on: the controller re-attaches, a fresh middleware replaces
	// the crashed one (NewMiddleware re-installs the receive path and the
	// two system filters), and the cold-booted clock reads an arbitrary
	// value until synchronization pulls it back.
	node.Ctrl.Reattach()
	mw := NewMiddleware(sys.K, node, sys.Cfg.Bands)
	mw.Cal = sys.Cfg.Calendar
	mw.Epoch = sys.Cfg.Epoch
	mw.SuppressRedundancy = !sys.Cfg.NoSuppressRedundancy
	mw.Obs = sys.Obs
	if sys.Syncer != nil {
		mw.Syncer = sys.Syncer
		node.Clock.SetTo(now, 0) // cold RTC: re-sync will correct it
	}
	client := binding.NewClient(sys.K, node.Ctrl)
	client.Prio = recoveryPrio
	mw.ConfigRx = client.HandleFrame

	lc.rejoin(i, node, mw, client, rec)
	return nil
}

// rejoin runs the join protocol (retrying as long as it takes: the agent
// may be unreachable during a fault burst), then re-binds the subjects the
// station used before the crash.
func (lc *Lifecycle) rejoin(i int, node *Node, mw *Middleware, client *binding.Client, rec *crashRecord) {
	client.Join(uidOf(i), func(_ can.TxNode, err error) {
		if mw.stopped || node.MW != mw {
			return // crashed again mid-recovery
		}
		if err != nil {
			lc.sys.K.After(100*sim.Millisecond, func() {
				if !mw.stopped && node.MW == mw {
					lc.rejoin(i, node, mw, client, rec)
				}
			})
			return
		}
		lc.rebind(i, node, mw, client, rec, 0)
	})
}

// rebind fetches the etag of each previously-bound subject over the wire,
// one at a time, installing the answers as fixed entries in the fresh
// middleware's private table. The agent serves them from the authoritative
// shared table, so the recovered node ends up with exactly the bindings it
// had — obtained honestly through the protocol, not by peeking at shared
// state.
func (lc *Lifecycle) rebind(i int, node *Node, mw *Middleware, client *binding.Client, rec *crashRecord, idx int) {
	if mw.stopped || node.MW != mw {
		return
	}
	if idx >= len(rec.channels) {
		lc.resync(i, node, mw, rec)
		return
	}
	info := rec.channels[idx]
	client.Bind(info.Subject, func(etag can.Etag, err error) {
		if err == nil {
			err = mw.Bindings.BindFixed(info.Subject, etag)
		}
		_ = err // an unbindable subject is skipped; the app will re-bind on demand
		lc.rebind(i, node, mw, client, rec, idx+1)
	})
}

// resync waits for the next clock adjustment (when synchronization runs)
// before declaring the node up: calendar re-entry needs a clock that is
// back inside the precision bound, or slots would fire at cold-boot times.
func (lc *Lifecycle) resync(i int, node *Node, mw *Middleware, rec *crashRecord) {
	finish := func() {
		if mw.stopped || node.MW != mw {
			return
		}
		lc.RestartCount++
		if lc.OnRestart != nil {
			lc.OnRestart(i, mw)
		}
		lc.sys.Obs.NodeLifecycle(obs.StageNodeUp, i, lc.sys.K.Now(),
			fmt.Sprintf("outage %v", lc.sys.K.Now()-rec.at))
	}
	if lc.sys.Syncer == nil {
		finish()
		return
	}
	node.Clock.AfterNextAdjustment(finish)
}
