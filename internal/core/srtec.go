package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/obs"
	"canec/internal/sim"
)

// SRTEC is a soft real-time event channel (Fig. 2): no reservations;
// events carry transmission deadlines and are scheduled EDF by encoding
// their laxity in the priority field of the CAN identifier and promoting
// queued messages as their deadlines approach (§3.4). Deadline misses and
// validity expirations raise local exceptions for application awareness.
type SRTEC struct {
	ch *channelState
}

// SRTEC returns the soft real-time channel for a subject on this node.
func (mw *Middleware) SRTEC(subject binding.Subject) (*SRTEC, error) {
	ch, err := mw.channel(subject, SRT)
	if err != nil {
		return nil, err
	}
	return &SRTEC{ch: ch}, nil
}

// srtEntry tracks one queued SRT event through promotion, expiration and
// completion.
type srtEntry struct {
	ev         Event
	ch         *channelState
	handle     can.TxHandle
	deadline   sim.Time // local clock
	expiration sim.Time // local clock, 0 = none
	seq        uint64   // node-wide enqueue order, for deterministic shedding
	done       bool
}

// valueAt returns the entry's residual value at local time now under its
// channel's value function (default: 1 before the deadline, 0 after).
func (e *srtEntry) valueAt(now sim.Time) float64 {
	if fn := e.ch.attrs.Value; fn != nil {
		return fn.At(now - e.deadline)
	}
	if now <= e.deadline {
		return 1
	}
	return 0
}

// Announce prepares the channel for publication. SRT channels need no
// reservation; announcing binds the subject and installs the exception
// handler for deadline-miss and expiration notifications.
func (c *SRTEC) Announce(attrs ChannelAttrs, exc ExceptionHandler) error {
	ch := c.ch
	if ch.mw.stopped {
		return ErrStopped
	}
	if attrs.Payload < 0 || attrs.Payload > can.MaxPayload {
		return fmt.Errorf("%w: SRT payload %d (max %d)", ErrPayload, attrs.Payload, can.MaxPayload)
	}
	if attrs.Payload == 0 {
		attrs.Payload = can.MaxPayload
	}
	if err := ch.mw.admissionRequest(ch, attrs); err != nil {
		return err
	}
	ch.attrs = attrs
	ch.pubExc = exc
	ch.announced = true
	return nil
}

// CancelPublication withdraws the announcement and aborts all queued
// events (without exceptions: the application asked for it).
func (c *SRTEC) CancelPublication() {
	ch := c.ch
	for e := range ch.srtActive {
		if !e.done {
			ch.mw.node.Ctrl.Abort(e.handle)
			e.done = true
		}
	}
	ch.srtActive = make(map[*srtEntry]bool)
	ch.announced = false
	ch.mw.admissionRelease(ch)
}

// Publish hands an event to the EDF transmission scheduler. The event's
// Deadline attribute (publisher-local clock) drives its priority; the
// Expiration attribute bounds how long it may stay queued (§2.2.2).
func (c *SRTEC) Publish(ev Event) error {
	prof := c.ch.mw.K.Probe()
	if prof == nil {
		return c.publish(ev)
	}
	pt0 := sim.ProbeNow()
	err := c.publish(ev)
	prof.StageNs(sim.ProbeEnqueue, sim.ProbeClassSRT, sim.ProbeNow()-pt0)
	return err
}

func (c *SRTEC) publish(ev Event) error {
	ch := c.ch
	mw := ch.mw
	if !ch.announced {
		return ErrNotAnnounced
	}
	if mw.stopped {
		return ErrStopped
	}
	if len(ev.Payload) > ch.attrs.Payload {
		return fmt.Errorf("%w: %d > %d", ErrPayload, len(ev.Payload), ch.attrs.Payload)
	}
	now := mw.LocalTime()
	ev.Attrs.Timestamp = now
	if ev.Attrs.Deadline == 0 {
		// No deadline given: treat as "end of horizon" (least urgent).
		ev.Attrs.Deadline = now + mw.bands.SRT.Horizon()
	}
	if mw.MaxQueuedSRT > 0 && mw.srtQueuedTotal() >= mw.MaxQueuedSRT {
		if !mw.shedLowestValue(now) {
			// Nothing sheddable (everything in flight): reject the new
			// event as the implicit lowest-priority citizen.
			ch.raisePub(Exception{
				Kind: ExcLoadShed, Subject: ch.subject, Event: &ev,
				At: mw.K.Now(), Detail: "send queue full, no sheddable entry",
			})
			mw.Obs.Emit(0, obs.StageShed, SRT.String(), mw.node.Index,
				uint64(ch.subject), mw.K.Now(), "rejected at publish")
			return fmt.Errorf("core: SRT send queue full on node %d", mw.node.Index)
		}
	}
	mw.srtSeq++
	if ev.traceID == 0 {
		ev.traceID = mw.Obs.Begin(SRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	} else {
		mw.Obs.Adopt(ev.traceID, SRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	}
	e := &srtEntry{ev: ev, ch: ch, deadline: ev.Attrs.Deadline,
		expiration: ev.Attrs.Expiration, seq: mw.srtSeq}
	prio := mw.bands.SRT.PrioFor(now, e.deadline)
	frame := can.Frame{
		ID:   can.MakeID(prio, mw.node.Ctrl.Node(), ch.etag),
		Data: append([]byte(nil), ev.Payload...),
		Tag:  ev.traceID,
	}
	e.handle = mw.node.Ctrl.Submit(frame, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
		e.done = true
		delete(ch.srtActive, e)
		if !ok {
			ch.raisePub(Exception{
				Kind: ExcTxFailure, Subject: ch.subject, Event: &e.ev,
				At: at, Detail: "SRT transmission abandoned",
			})
			mw.Obs.Emit(e.ev.traceID, obs.StageDropped, SRT.String(), mw.node.Index,
				uint64(ch.subject), at, "tx_abandoned")
			return
		}
		if mw.node.Clock.Read(at) > e.deadline {
			// Transmitted, but after the transmission deadline: transient
			// overload or a non-preemptable lower-priority frame got in
			// the way. The application is notified for awareness (§2.2.2).
			ch.raisePub(Exception{
				Kind: ExcDeadlineMissed, Subject: ch.subject, Event: &e.ev,
				At: at, Detail: fmt.Sprintf("transmitted %v after deadline",
					mw.node.Clock.Read(at)-e.deadline),
			})
		}
	}})
	ch.srtActive[e] = true
	mw.counters.PublishedSRT++
	mw.Obs.Emit(ev.traceID, obs.StageEnqueued, SRT.String(), mw.node.Index,
		uint64(ch.subject), mw.K.Now(), fmt.Sprintf("prio %d", prio))
	c.armPromotion(e, prio)
	c.armExpiration(e)
	return nil
}

// armPromotion schedules the next identifier rewrite for a queued entry:
// the dynamic priority increase with granularity Δt_p of §3.4. Each
// rewrite is counted by the controller (promotion overhead, experiment E7).
func (c *SRTEC) armPromotion(e *srtEntry, cur can.Prio) {
	ch := c.ch
	mw := ch.mw
	if mw.DisablePromotion || cur <= mw.bands.SRT.Min {
		return
	}
	next := mw.bands.SRT.NextChange(mw.LocalTime(), e.deadline)
	if next == 0 {
		return
	}
	scheduleLocalGuarded(mw, next, func() {
		if e.done || mw.stopped {
			return
		}
		now := mw.LocalTime()
		p := mw.bands.SRT.PrioFor(now, e.deadline)
		if p < cur {
			if mw.node.Ctrl.Update(e.handle, can.MakeID(p, mw.node.Ctrl.Node(), ch.etag)) {
				mw.counters.PromotionsApplied++
				mw.Obs.Emit(e.ev.traceID, obs.StagePromoted, SRT.String(), mw.node.Index,
					uint64(ch.subject), mw.K.Now(), fmt.Sprintf("prio %d->%d", cur, p))
			}
		}
		c.armPromotion(e, p)
	})
}

// armExpiration schedules removal of the event at the end of its temporal
// validity: "the event is completely removed from the local send queue"
// and the application is notified (§2.2.2).
func (c *SRTEC) armExpiration(e *srtEntry) {
	ch := c.ch
	mw := ch.mw
	if e.expiration == 0 {
		return
	}
	scheduleLocalGuarded(mw, e.expiration, func() {
		if e.done || mw.stopped {
			return
		}
		if mw.node.Ctrl.Abort(e.handle) {
			e.done = true
			delete(ch.srtActive, e)
			ch.raisePub(Exception{
				Kind: ExcValidityExpired, Subject: ch.subject, Event: &e.ev,
				At: mw.K.Now(), Detail: "validity expired in send queue",
			})
			mw.Obs.Emit(e.ev.traceID, obs.StageExpired, SRT.String(), mw.node.Index,
				uint64(ch.subject), mw.K.Now(), "")
		}
		// Abort failing means the frame is on the wire right now; it will
		// complete and the Done callback handles the bookkeeping.
	})
}

// scheduleLocalGuarded arms fn at a local-clock instant, re-arming across
// clock adjustments (see clock.ScheduleLocal) and suppressing the firing
// after the middleware stopped.
func scheduleLocalGuarded(mw *Middleware, local sim.Time, fn func()) {
	clock.ScheduleLocal(mw.K, mw.node.Clock, local, func() {
		if mw.stopped {
			return
		}
		fn()
	})
}

// Pending reports how many events of this channel are still queued.
func (c *SRTEC) Pending() int { return len(c.ch.srtActive) }

// srtQueuedTotal counts queued SRT events across the node's channels.
func (mw *Middleware) srtQueuedTotal() int {
	n := 0
	for _, ch := range mw.channels {
		if ch.class == SRT {
			n += len(ch.srtActive)
		}
	}
	return n
}

// shedLowestValue removes the queued (not in-flight) SRT entry with the
// least residual value across all of the node's channels, raising a
// LoadShed exception on its channel. Ties break on the earlier deadline,
// then the older enqueue — a total order, so shedding is deterministic
// (map iteration order never decides). It reports whether an entry was
// shed.
func (mw *Middleware) shedLowestValue(now sim.Time) bool {
	excluded := make(map[*srtEntry]bool)
	for {
		var victim *srtEntry
		worst := 0.0
		better := func(e *srtEntry, v float64) bool {
			if victim == nil || v != worst {
				return victim == nil || v < worst
			}
			if e.deadline != victim.deadline {
				return e.deadline < victim.deadline
			}
			return e.seq < victim.seq
		}
		for _, ch := range mw.channels {
			if ch.class != SRT {
				continue
			}
			for e := range ch.srtActive {
				if excluded[e] {
					continue
				}
				if v := e.valueAt(now); better(e, v) {
					victim, worst = e, v
				}
			}
		}
		if victim == nil {
			return false // nothing abortable left
		}
		if !mw.node.Ctrl.Abort(victim.handle) {
			// On the wire right now: it will complete anyway; fall back to
			// the next-least-valuable entry.
			excluded[victim] = true
			continue
		}
		victim.done = true
		delete(victim.ch.srtActive, victim)
		victim.ch.raisePub(Exception{
			Kind: ExcLoadShed, Subject: victim.ch.subject, Event: &victim.ev,
			At: mw.K.Now(), Detail: fmt.Sprintf("shed with residual value %.2f", worst),
		})
		mw.Obs.Emit(victim.ev.traceID, obs.StageShed, SRT.String(), mw.node.Index,
			uint64(victim.ch.subject), mw.K.Now(),
			fmt.Sprintf("residual value %.2f", worst))
		return true
	}
}

// Subscribe installs the handlers and the acceptance filter. SRT events
// are delivered immediately on arrival (no de-jittering: deadlines are a
// transmission property).
func (c *SRTEC) Subscribe(attrs ChannelAttrs, sub SubscribeAttrs, notify NotificationHandler, exc ExceptionHandler) error {
	ch := c.ch
	if ch.mw.stopped {
		return ErrStopped
	}
	if !ch.announced {
		ch.attrs = attrs
	}
	ch.subAttrs = sub
	ch.notify = notify
	ch.subExc = exc
	if !ch.subscribed {
		ch.subscribed = true
		ch.mw.node.Ctrl.AddFilter(ch.etag)
	}
	return nil
}

// CancelSubscription removes the subscription (strictly local).
func (c *SRTEC) CancelSubscription() {
	ch := c.ch
	ch.subscribed = false
	ch.notify = nil
	ch.mw.node.Ctrl.RemoveFilter(ch.etag)
}

// srtReceive delivers an arriving SRT event.
func (ch *channelState) srtReceive(f can.Frame, at sim.Time) {
	pub := f.ID.TxNode()
	ev := Event{
		Subject: ch.subject,
		Payload: append([]byte(nil), f.Data...),
		traceID: f.Tag,
	}
	if !ch.subAttrs.accepts(pub, ev) {
		return
	}
	mw := ch.mw
	mw.counters.DeliveredSRT++
	di := DeliveryInfo{Publisher: pub, ArrivedAt: at, DeliveredAt: at}
	if pubAt, ok := mw.Obs.PublishKernelTime(ev.traceID); ok {
		di.PublishedAt = pubAt
	}
	ch.store(ev, di)
	mw.Obs.Delivered(ev.traceID, SRT.String(), mw.node.Index,
		uint64(ch.subject), at, "")
	ch.deliverNotify(ev, di)
}

// GetEvent retrieves the most recently delivered event from the
// middleware's memory area — the paper's getEvent() primitive (§2.2.1).
func (c *SRTEC) GetEvent() (ev Event, di DeliveryInfo, ok bool) { return c.ch.getEvent() }
