package core

import (
	"errors"
	"testing"

	"canec/internal/binding"
	"canec/internal/clock"
	"canec/internal/obs"
	"canec/internal/sim"
)

// TestLifecycleRestartWithAgentDown: a station restarting while the binding
// agent is unreachable must not hang. The bounded re-join surfaces
// binding.ErrAgentUnreachable through OnRestartError, and recovery completes
// in the background once the agent returns.
func TestLifecycleRestartWithAgentDown(t *testing.T) {
	cal := crashCalendar(t)
	sys := idealSystem(t, 3, cal)
	lc := NewLifecycle(sys)

	var restartErrs []error
	lc.OnRestartError = func(n int, err error) {
		if n != 1 {
			t.Errorf("OnRestartError for station %d, want 1", n)
		}
		restartErrs = append(restartErrs, err)
	}
	var recoveredAt sim.Time
	lc.OnRestart = func(n int, _ *Middleware) { recoveredAt = sys.K.Now() }

	sys.K.At(10*sim.Millisecond, func() {
		if err := lc.Crash(1); err != nil {
			t.Errorf("Crash: %v", err)
		}
		sys.Nodes[0].Ctrl.Detach() // agent station loses the bus (not via lc)
	})
	sys.K.At(20*sim.Millisecond, func() {
		if err := lc.Restart(1); err != nil {
			t.Errorf("Restart: %v", err)
		}
	})
	agentBack := sim.Time(3 * sim.Second)
	sys.K.At(agentBack, func() { sys.Nodes[0].Ctrl.Reattach() })
	sys.Run(8 * sim.Second)

	if len(restartErrs) == 0 {
		t.Fatal("bounded re-join never reported failure while the agent was down")
	}
	for _, err := range restartErrs {
		if !errors.Is(err, binding.ErrAgentUnreachable) {
			t.Fatalf("OnRestartError got %v, want ErrAgentUnreachable", err)
		}
	}
	if recoveredAt == 0 {
		t.Fatal("station never recovered after the agent returned")
	}
	if recoveredAt < agentBack {
		t.Fatalf("recovered at %v, before the agent returned at %v", recoveredAt, agentBack)
	}
	if lc.RestartCount != 1 || lc.Down(1) {
		t.Fatalf("RestartCount=%d Down(1)=%v after background recovery", lc.RestartCount, lc.Down(1))
	}
}

// TestLifecycleAgentCrashWithStandby: with a standby armed, the agent
// station may crash; the standby takes the role over, and the restarted old
// agent station re-arms as the new standby.
func TestLifecycleAgentCrashWithStandby(t *testing.T) {
	cal := crashCalendar(t)
	sys, err := NewSystem(SystemConfig{
		Nodes:    3,
		Seed:     1,
		Calendar: cal,
		Epoch:    1 * sim.Millisecond,
		Observe:  obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLifecycle(sys)
	if err := lc.EnableStandby(2, binding.HeartbeatConfig{}); err != nil {
		t.Fatal(err)
	}

	sys.K.At(50*sim.Millisecond, func() {
		if err := lc.Crash(0); err != nil {
			t.Errorf("Crash(agent) with live standby: %v", err)
		}
	})
	sys.K.At(500*sim.Millisecond, func() {
		if lc.AgentTakeovers != 1 {
			t.Errorf("takeovers = %d before restart, want 1", lc.AgentTakeovers)
		}
		if err := lc.Restart(0); err != nil {
			t.Errorf("Restart: %v", err)
		}
	})
	sys.Run(2 * sim.Second)

	if lc.AgentStation() != 2 {
		t.Fatalf("acting agent on station %d, want 2", lc.AgentStation())
	}
	if lc.RestartCount != 1 {
		t.Fatalf("RestartCount = %d, want 1", lc.RestartCount)
	}
	if lc.Standby() == nil || lc.Standby().Active() {
		t.Fatal("restarted old agent station did not re-arm as the new standby")
	}
	var sawTakeover bool
	for _, rec := range sys.Obs.Records() {
		if rec.Stage == obs.StageAgentTakeover && rec.Node == 2 {
			sawTakeover = true
		}
	}
	if !sawTakeover {
		t.Fatal("agent_takeover missing from trace")
	}
}

// TestLifecycleStandbyGuards pins EnableStandby's and Crash's control-plane
// error paths.
func TestLifecycleStandbyGuards(t *testing.T) {
	cal := crashCalendar(t)
	sys := idealSystem(t, 3, cal)
	lc := NewLifecycle(sys)

	if err := lc.EnableStandby(0, binding.HeartbeatConfig{}); err == nil {
		t.Fatal("standby on the agent's own station must fail")
	}
	if err := lc.EnableStandby(3, binding.HeartbeatConfig{}); err == nil {
		t.Fatal("standby station out of range must fail")
	}
	if err := lc.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := lc.EnableStandby(2, binding.HeartbeatConfig{}); err == nil {
		t.Fatal("standby on a crashed station must fail")
	}
	if err := lc.Restart(2); err != nil {
		t.Fatal(err)
	}
	sys.Run(sys.K.Now() + sim.Second)
	if err := lc.EnableStandby(2, binding.HeartbeatConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := lc.EnableStandby(1, binding.HeartbeatConfig{}); err == nil {
		t.Fatal("arming a second standby must fail")
	}
	// The armed standby is the only thing keeping the agent crashable; with
	// the standby down, crashing the agent must be refused again.
	if err := lc.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := lc.Crash(0); err == nil {
		t.Fatal("crashing the agent with the standby down must fail")
	}
}

// TestLifecycleMasterCrashGuard: the acting time master can only crash when
// a live ranked backup exists.
func TestLifecycleMasterCrashGuard(t *testing.T) {
	cal := crashCalendar(t)
	sync := clock.DefaultSyncConfig()
	sync.Period = 10 * sim.Millisecond
	sys, err := NewSystem(SystemConfig{
		Nodes:            4,
		Seed:             5,
		Calendar:         cal,
		Sync:             sync,
		Master:           1,
		MaxDriftPPM:      20,
		MaxInitialOffset: 20 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLifecycle(sys)
	if err := lc.Crash(1); err == nil {
		t.Fatal("crashing the master without backups must fail")
	}
	sys.Syncer.SetBackups([]int{3})
	sys.K.At(100*sim.Millisecond, func() {
		if err := lc.Crash(1); err != nil {
			t.Errorf("Crash(master) with live backup: %v", err)
		}
	})
	sys.Run(sim.Second)
	if sys.Syncer.Takeovers != 1 || sys.Syncer.Master != 3 {
		t.Fatalf("takeovers=%d master=%d, want 1 / 3", sys.Syncer.Takeovers, sys.Syncer.Master)
	}
	// With the sole backup now the master, crashing it must be refused.
	if err := lc.Crash(3); err == nil {
		t.Fatal("crashing the last master must fail")
	}
}

type stubHealth struct{ u sim.Duration }

func (s stubHealth) Uncertainty(int, sim.Time) sim.Duration { return s.u }

// TestHRTSlackWidensInHoldover pins the holdover widening of the HRT
// lateness check: the slack is 2π while the clock-health uncertainty stays
// inside it and grows to the uncertainty bound (counted) beyond it.
func TestHRTSlackWidensInHoldover(t *testing.T) {
	cal := crashCalendar(t)
	sys := idealSystem(t, 3, cal)
	mw := sys.Node(2).MW
	base := 2 * cal.Cfg.Precision
	if got := mw.hrtSlack(); got != base {
		t.Fatalf("slack without health source = %v, want 2π = %v", got, base)
	}
	mw.Health = stubHealth{u: base / 2}
	if got := mw.hrtSlack(); got != base {
		t.Fatalf("slack with small uncertainty = %v, want 2π = %v", got, base)
	}
	if mw.Counters().HoldoverWidened != 0 {
		t.Fatal("widening counted while uncertainty was inside 2π")
	}
	wide := 3 * base
	mw.Health = stubHealth{u: wide}
	if got := mw.hrtSlack(); got != wide {
		t.Fatalf("slack in deep holdover = %v, want uncertainty %v", got, wide)
	}
	if mw.Counters().HoldoverWidened != 1 {
		t.Fatalf("HoldoverWidened = %d, want 1", mw.Counters().HoldoverWidened)
	}
}
