package core

import (
	"bytes"
	"errors"
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/sim"
)

const (
	subjTemp  binding.Subject = 0x1001
	subjDiag  binding.Subject = 0x2001
	subjBulk  binding.Subject = 0x3001
	subjOther binding.Subject = 0x4001
)

// testCalendar builds a one-slot calendar for subjTemp published by node 0,
// with round length 10 ms.
func testCalendar(t *testing.T, k int) *calendar.Calendar {
	t.Helper()
	cfg := calendar.DefaultConfig()
	cfg.OmissionDegree = k
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// idealSystem has zero drift, no sync, so local time == kernel time and
// geometry assertions are exact.
func idealSystem(t *testing.T, nodes int, cal *calendar.Calendar) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Nodes:    nodes,
		Seed:     1,
		Calendar: cal,
		Epoch:    1 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHRTDeliveryAtExactDeadline(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, err := sys.Node(0).MW.HRTEC(subjTemp)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	subC, err := sys.Node(1).MW.HRTEC(subjTemp)
	if err != nil {
		t.Fatal(err)
	}
	var deliveries []DeliveryInfo
	var payloads [][]byte
	err = subC.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(ev Event, di DeliveryInfo) {
			deliveries = append(deliveries, di)
			payloads = append(payloads, ev.Payload)
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Publish one event per round, just before each slot's ready instant.
	slot := cal.Slots[0]
	for r := int64(0); r < 20; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			if err := pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(r)}}); err != nil {
				t.Errorf("publish round %d: %v", r, err)
			}
		})
	}
	sys.Run(sys.Cfg.Epoch + 20*cal.Round - 1)

	if len(deliveries) != 20 {
		t.Fatalf("deliveries = %d, want 20", len(deliveries))
	}
	for i, di := range deliveries {
		want := sys.Cfg.Epoch + sim.Time(i)*cal.Round + slot.Deadline(cal.Cfg)
		if di.DeliveredAt != want {
			t.Fatalf("delivery %d at %v, want exactly %v (zero app jitter)", i, di.DeliveredAt, want)
		}
		if di.Late {
			t.Fatalf("delivery %d marked late", i)
		}
		if di.ArrivedAt >= di.DeliveredAt {
			t.Fatalf("delivery %d: arrival %v not before deadline %v", i, di.ArrivedAt, di.DeliveredAt)
		}
		if !bytes.Equal(payloads[i], []byte{byte(i)}) {
			t.Fatalf("delivery %d payload %v", i, payloads[i])
		}
	}
	if c := sys.TotalCounters(); c.SlotMissed != 0 || c.LateHRTDeliveries != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestHRTToleratesOmissionDegreeFaults(t *testing.T) {
	cal := testCalendar(t, 2) // dimensioned for k=2
	sys := idealSystem(t, 2, cal)
	sys.Bus.Injector = can.AdversarialK{K: 2, Prio: 0} // exactly k faults per frame
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	got := 0
	var misses int
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ },
		func(e Exception) {
			if e.Kind == ExcSlotMissed {
				misses++
			}
		})
	for r := int64(0); r < 10; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	sys.Run(sys.Cfg.Epoch + 10*cal.Round - 1)
	if got != 10 || misses != 0 {
		t.Fatalf("got %d deliveries, %d misses; want 10, 0 — HRT must mask k faults", got, misses)
	}
	// Every delivery must still be at the exact deadline despite retries.
	if c := sys.TotalCounters(); c.LateHRTDeliveries != 0 {
		t.Fatalf("late deliveries under tolerated faults: %+v", c)
	}
}

func TestHRTFaultsBeyondAssumptionDetected(t *testing.T) {
	cal := testCalendar(t, 1) // dimensioned for k=1 only
	sys := idealSystem(t, 2, cal)
	sys.Bus.Injector = can.FuncInjector(func(f can.Frame, _, attempt int, _ sim.Time, _ *sim.RNG) can.Fault {
		// Fail the first 40 attempts of HRT frames: a long burst far beyond
		// the fault assumption. The frame eventually arrives (CAN keeps
		// retransmitting) but after the delivery deadline.
		if f.ID.Prio() == 0 && attempt <= 40 {
			return can.Fault{Kind: can.FaultError}
		}
		return can.Fault{}
	})
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	late := 0
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(_ Event, di DeliveryInfo) {
			if di.Late {
				late++
			}
		}, nil)
	sys.K.At(sys.Cfg.Epoch-100*sim.Microsecond, func() {
		pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
	})
	sys.Run(sys.Cfg.Epoch + 2*cal.Round)
	if late != 1 {
		t.Fatalf("late deliveries = %d, want 1 (fault burst beyond assumption)", late)
	}
}

func TestHRTPublisherCrashRaisesSlotMissed(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	var misses int
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) {}, func(e Exception) {
			if e.Kind == ExcSlotMissed {
				misses++
			}
		})
	// Publisher publishes for 3 rounds then "crashes" (mutes).
	for r := int64(0); r < 3; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	sys.K.At(sys.Cfg.Epoch+3*cal.Round+cal.Round/2, func() {
		sys.Node(0).Ctrl.Mute(true)
		sys.Node(0).MW.Stop()
	})
	sys.Run(sys.Cfg.Epoch + 8*cal.Round)
	if misses < 4 {
		t.Fatalf("misses = %d, want ≥4 after publisher crash", misses)
	}
}

func TestHRTSporadicUnusedSlotsSilent(t *testing.T) {
	cal := testCalendar(t, 1)
	cal.Slots[0].Periodic = false
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: false}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	var misses, got int
	sub.Subscribe(ChannelAttrs{Payload: 7}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ },
		func(e Exception) {
			if e.Kind == ExcSlotMissed {
				misses++
			}
		})
	// Publish only in rounds 2 and 5.
	for _, r := range []int64{2, 5} {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{9}})
		})
	}
	sys.Run(sys.Cfg.Epoch + 10*cal.Round)
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2", got)
	}
	if misses != 0 {
		t.Fatalf("sporadic channel raised %d SlotMissed", misses)
	}
	if c := sys.TotalCounters(); c.SlotsUnused < 7 {
		t.Fatalf("SlotsUnused = %d, want ≥7", c.SlotsUnused)
	}
}

func TestHRTRedundancySuppression(t *testing.T) {
	run := func(suppress bool) Counters {
		cal := testCalendar(t, 2)
		sys, err := NewSystem(SystemConfig{
			Nodes: 2, Seed: 1, Calendar: cal, Epoch: 1 * sim.Millisecond,
			NoSuppressRedundancy: !suppress,
		})
		if err != nil {
			t.Fatal(err)
		}
		pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
		pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
		sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
		got := 0
		sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
			func(Event, DeliveryInfo) { got++ }, nil)
		for r := int64(0); r < 10; r++ {
			sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
				pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
			})
		}
		sys.Run(sys.Cfg.Epoch + 11*cal.Round)
		if got != 10 {
			t.Fatalf("suppress=%v: deliveries = %d, want 10 (no duplicate notifications)", suppress, got)
		}
		return sys.TotalCounters()
	}
	withSup := run(true)
	without := run(false)
	if withSup.CopiesSuppressed != 20 { // k=2 copies suppressed per event × 10
		t.Fatalf("CopiesSuppressed = %d, want 20", withSup.CopiesSuppressed)
	}
	if without.RedundantCopiesSent != 20 {
		t.Fatalf("RedundantCopiesSent = %d, want 20", without.RedundantCopiesSent)
	}
	if without.DuplicatesDropped != 20 {
		t.Fatalf("DuplicatesDropped = %d, want 20 (receiver dedup)", without.DuplicatesDropped)
	}
}

func TestHRTRedundancyMasksInconsistentOmission(t *testing.T) {
	// Victim node 1 silently misses the first copy of every frame. With
	// suppression the event is lost (SlotMissed); with always-k redundancy
	// the second copy delivers it.
	build := func(suppress bool) (*System, *int, *int) {
		cal := testCalendar(t, 1)
		sys, err := NewSystem(SystemConfig{
			Nodes: 2, Seed: 1, Calendar: cal, Epoch: 1 * sim.Millisecond,
			NoSuppressRedundancy: !suppress,
		})
		if err != nil {
			t.Fatal(err)
		}
		first := make(map[uint8]bool)
		sys.Bus.Injector = can.FuncInjector(func(f can.Frame, _, _ int, _ sim.Time, _ *sim.RNG) can.Fault {
			if f.ID.Prio() != 0 || len(f.Data) == 0 {
				return can.Fault{}
			}
			seq := f.Data[0] >> 4
			if !first[seq] {
				first[seq] = true
				return can.Fault{Kind: can.FaultOmission, Victims: map[int]bool{1: true}}
			}
			return can.Fault{}
		})
		pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
		pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
		sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
		got, misses := new(int), new(int)
		sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
			func(Event, DeliveryInfo) { *got++ },
			func(e Exception) {
				if e.Kind == ExcSlotMissed {
					*misses++
				}
			})
		for r := int64(0); r < 5; r++ {
			sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
				pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
			})
		}
		sys.Run(sys.Cfg.Epoch + 5*cal.Round - 1)
		return sys, got, misses
	}
	_, gotSup, missSup := build(true)
	if *gotSup != 0 || *missSup != 5 {
		t.Fatalf("suppression: got=%d misses=%d, want 0/5 (inconsistent omission defeats suppression)",
			*gotSup, *missSup)
	}
	_, gotAll, missAll := build(false)
	if *gotAll != 5 || *missAll != 0 {
		t.Fatalf("always-k: got=%d misses=%d, want 5/0", *gotAll, *missAll)
	}
}

func TestHRTQueueOverflow(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	var overflow int
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, func(e Exception) {
		if e.Kind == ExcQueueOverflow {
			overflow++
		}
	})
	var lastErr error
	for i := 0; i < 12; i++ {
		lastErr = pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
	}
	if lastErr == nil || overflow == 0 {
		t.Fatalf("no overflow after 12 unpublished events: err=%v exc=%d", lastErr, overflow)
	}
}

func TestHRTAnnounceErrors(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 3, cal)
	// Node 2 has no slot for subjTemp.
	c2, _ := sys.Node(2).MW.HRTEC(subjTemp)
	if err := c2.Announce(ChannelAttrs{Payload: 7}, nil); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("announce without slot: %v", err)
	}
	// Unknown subject.
	cx, _ := sys.Node(0).MW.HRTEC(subjOther)
	if err := cx.Announce(ChannelAttrs{Payload: 7}, nil); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("announce unknown subject: %v", err)
	}
	// Payload too big for header.
	c0, _ := sys.Node(0).MW.HRTEC(subjTemp)
	if err := c0.Announce(ChannelAttrs{Payload: 8}, nil); !errors.Is(err, ErrPayload) {
		t.Fatalf("8-byte HRT payload: %v", err)
	}
	// Publish before announce.
	if err := c0.Publish(Event{Subject: subjTemp}); !errors.Is(err, ErrNotAnnounced) {
		t.Fatalf("publish before announce: %v", err)
	}
}

func TestClassMismatch(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	if _, err := sys.Node(0).MW.HRTEC(subjTemp); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Node(0).MW.SRTEC(subjTemp); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("class mismatch: %v", err)
	}
}

func TestSRTEDFOrdering(t *testing.T) {
	sys := idealSystem(t, 3, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	pub2, _ := sys.Node(1).MW.SRTEC(subjOther)
	pub2.Announce(ChannelAttrs{}, nil)
	var order []byte
	sub, _ := sys.Node(2).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(ev Event, _ DeliveryInfo) {
		order = append(order, ev.Payload[0])
	}, nil)
	sub2, _ := sys.Node(2).MW.SRTEC(subjOther)
	sub2.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(ev Event, _ DeliveryInfo) {
		order = append(order, ev.Payload[0])
	}, nil)

	// Occupy the bus, then queue three events with inverted deadline order.
	blocker, _ := sys.Node(2).MW.NRTEC(subjBulk)
	blocker.Announce(ChannelAttrs{Prio: 255}, nil)
	sys.K.At(sim.Millisecond, func() {
		blocker.Publish(Event{Subject: subjBulk, Payload: []byte{0, 1, 2, 3, 4, 5, 6}})
		now := sys.Node(0).MW.LocalTime()
		// Far deadline first, near deadline last; EDF must reorder.
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{3},
			Attrs: EventAttrs{Deadline: now + 30*sim.Millisecond}})
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{2},
			Attrs: EventAttrs{Deadline: now + 20*sim.Millisecond}})
		pub2.Publish(Event{Subject: subjOther, Payload: []byte{1},
			Attrs: EventAttrs{Deadline: now + 5*sim.Millisecond}})
	})
	sys.Run(1 * sim.Second)
	if len(order) != 3 {
		t.Fatalf("deliveries = %d", len(order))
	}
	for i, want := range []byte{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("EDF order = %v, want [1 2 3]", order)
		}
	}
}

func TestSRTPromotion(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	// Saturate the bus with a competing same-band stream so the message
	// stays queued long enough to be promoted... simplest: block with a
	// continuous stream of more-urgent messages from another channel.
	comp, _ := sys.Node(1).MW.SRTEC(subjOther)
	comp.Announce(ChannelAttrs{}, nil)
	stop := false
	var flood func()
	flood = func() {
		if stop {
			return
		}
		now := sys.Node(1).MW.LocalTime()
		comp.Publish(Event{Subject: subjOther, Payload: []byte{0},
			Attrs: EventAttrs{Deadline: now + sim.Millisecond}})
		sys.K.After(60*sim.Microsecond, flood)
	}
	sys.K.At(0, flood)
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{7},
			Attrs: EventAttrs{Deadline: now + 20*sim.Millisecond}})
	})
	sys.K.At(40*sim.Millisecond, func() { stop = true })
	sys.Run(100 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("deliveries = %d", got)
	}
	c := sys.TotalCounters()
	if c.PromotionsApplied == 0 {
		t.Fatal("no promotions applied to a long-queued SRT message")
	}
	if sys.Bus.Stats().IDRewrites != c.PromotionsApplied {
		t.Fatalf("controller rewrites %d != promotions %d",
			sys.Bus.Stats().IDRewrites, c.PromotionsApplied)
	}
}

func TestSRTExpiration(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	var expired int
	pub.Announce(ChannelAttrs{}, func(e Exception) {
		if e.Kind == ExcValidityExpired {
			expired++
		}
	})
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	// Block the bus completely with an endless more-urgent stream.
	comp, _ := sys.Node(1).MW.SRTEC(subjOther)
	comp.Announce(ChannelAttrs{}, nil)
	var flood func()
	flood = func() {
		if sys.K.Now() > 50*sim.Millisecond {
			return
		}
		now := sys.Node(1).MW.LocalTime()
		comp.Publish(Event{Subject: subjOther, Payload: []byte{0},
			Attrs: EventAttrs{Deadline: now + 100*sim.Microsecond}})
		sys.K.After(60*sim.Microsecond, flood)
	}
	sys.K.At(0, flood)
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		// Far deadline: the event never gets promoted above the urgent
		// flood before its validity runs out.
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{7},
			Attrs: EventAttrs{
				Deadline:   now + 30*sim.Millisecond,
				Expiration: now + 10*sim.Millisecond,
			}})
	})
	sys.Run(100 * sim.Millisecond)
	if expired != 1 {
		t.Fatalf("expirations = %d, want 1", expired)
	}
	if got != 0 {
		t.Fatalf("expired event was delivered")
	}
	if sys.TotalCounters().Expired != 1 {
		t.Fatalf("counters = %+v", sys.TotalCounters())
	}
}

func TestSRTDeadlineMissException(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	var missed int
	pub.Announce(ChannelAttrs{}, func(e Exception) {
		if e.Kind == ExcDeadlineMissed {
			missed++
		}
	})
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	// A blocking NRT bulk transfer occupies the bus; the SRT event's tight
	// deadline passes while it waits (non-preemptable transmission).
	bulk, _ := sys.Node(1).MW.NRTEC(subjBulk)
	bulk.Announce(ChannelAttrs{Prio: 255, Fragmentation: true}, nil)
	sys.K.At(sim.Millisecond, func() {
		bulk.Publish(Event{Subject: subjBulk, Payload: make([]byte, 100)})
	})
	sys.K.At(sim.Millisecond+10*sim.Microsecond, func() {
		now := sys.Node(0).MW.LocalTime()
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{7},
			Attrs: EventAttrs{Deadline: now + 50*sim.Microsecond}})
	})
	sys.Run(100 * sim.Millisecond)
	if missed != 1 {
		t.Fatalf("deadline misses = %d, want 1", missed)
	}
	if got != 1 {
		t.Fatalf("late event must still be delivered (best effort), got %d", got)
	}
}

func TestNRTBulkRoundtrip(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.NRTEC(subjBulk)
	if err := pub.Announce(ChannelAttrs{Prio: 252, Fragmentation: true}, nil); err != nil {
		t.Fatal(err)
	}
	var got []byte
	sub, _ := sys.Node(1).MW.NRTEC(subjBulk)
	sub.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{},
		func(ev Event, _ DeliveryInfo) { got = ev.Payload }, nil)
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 31)
	}
	sys.K.At(sim.Millisecond, func() {
		if err := pub.Publish(Event{Subject: subjBulk, Payload: img}); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	sys.Run(2 * sim.Second)
	if !bytes.Equal(got, img) {
		t.Fatalf("bulk roundtrip failed: got %d bytes", len(got))
	}
}

func TestNRTFragmentLossRaisesFragError(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	n := 0
	sys.Bus.Injector = can.FuncInjector(func(f can.Frame, _, _ int, _ sim.Time, _ *sim.RNG) can.Fault {
		if f.ID.Prio() == 252 {
			n++
			if n == 3 { // silently drop the third fragment at node 1
				return can.Fault{Kind: can.FaultOmission, Victims: map[int]bool{1: true}}
			}
		}
		return can.Fault{}
	})
	pub, _ := sys.Node(0).MW.NRTEC(subjBulk)
	pub.Announce(ChannelAttrs{Prio: 252, Fragmentation: true}, nil)
	var fragErrs, got int
	sub, _ := sys.Node(1).MW.NRTEC(subjBulk)
	sub.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ },
		func(e Exception) {
			if e.Kind == ExcFragError {
				fragErrs++
			}
		})
	sys.K.At(sim.Millisecond, func() {
		pub.Publish(Event{Subject: subjBulk, Payload: make([]byte, 100)})
	})
	sys.Run(1 * sim.Second)
	if fragErrs != 1 || got != 0 {
		t.Fatalf("fragErrs=%d got=%d, want 1/0", fragErrs, got)
	}
}

func TestNRTPrioBandEnforced(t *testing.T) {
	sys := idealSystem(t, 1, nil)
	ch, _ := sys.Node(0).MW.NRTEC(subjBulk)
	if err := ch.Announce(ChannelAttrs{Prio: 100}, nil); !errors.Is(err, ErrPrioOutOfBand) {
		t.Fatalf("SRT-band priority accepted for NRT: %v", err)
	}
	if err := ch.Announce(ChannelAttrs{Prio: 0}, nil); err != nil {
		t.Fatalf("default priority: %v", err)
	}
	if got := sys.Node(0).MW.channels[mustEtag(t, sys, subjBulk)].attrs.Prio; got != 255 {
		t.Fatalf("default NRT priority = %d, want 255", got)
	}
}

func mustEtag(t *testing.T, sys *System, s binding.Subject) can.Etag {
	t.Helper()
	e, ok := sys.Bindings.Lookup(s)
	if !ok {
		t.Fatal("subject not bound")
	}
	return e
}

func TestSubscribeFilters(t *testing.T) {
	sys := idealSystem(t, 3, nil)
	pub0, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub0.Announce(ChannelAttrs{}, nil)
	pub1, _ := sys.Node(1).MW.SRTEC(subjDiag)
	pub1.Announce(ChannelAttrs{}, nil)
	var got []byte
	sub, _ := sys.Node(2).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{
		Publishers: []can.TxNode{0},
		Filter:     func(ev Event) bool { return ev.Payload[0] != 99 },
	}, func(ev Event, _ DeliveryInfo) { got = append(got, ev.Payload[0]) }, nil)
	sys.K.At(sim.Millisecond, func() {
		pub0.Publish(Event{Subject: subjDiag, Payload: []byte{1}})
		pub1.Publish(Event{Subject: subjDiag, Payload: []byte{2}})  // wrong publisher
		pub0.Publish(Event{Subject: subjDiag, Payload: []byte{99}}) // predicate reject
		pub0.Publish(Event{Subject: subjDiag, Payload: []byte{3}})
	})
	sys.Run(1 * sim.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("filtered deliveries = %v, want [1 3]", got)
	}
}

func TestCancelSubscriptionStopsNotifications(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	sys.K.At(sim.Millisecond, func() {
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{1}})
	})
	sys.K.At(10*sim.Millisecond, func() { sub.CancelSubscription() })
	sys.K.At(20*sim.Millisecond, func() {
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{2}})
	})
	sys.Run(1 * sim.Second)
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1 after cancel", got)
	}
}

func TestCancelPublicationAbortsQueued(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	pub, _ := sys.Node(0).MW.SRTEC(subjDiag)
	pub.Announce(ChannelAttrs{}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	// Block the bus, queue an event, cancel before it can go out.
	bulk, _ := sys.Node(1).MW.NRTEC(subjBulk)
	bulk.Announce(ChannelAttrs{Prio: 255, Fragmentation: true}, nil)
	sys.K.At(sim.Millisecond, func() {
		bulk.Publish(Event{Subject: subjBulk, Payload: make([]byte, 200)})
	})
	sys.K.At(sim.Millisecond+5*sim.Microsecond, func() {
		now := sys.Node(0).MW.LocalTime()
		pub.Publish(Event{Subject: subjDiag, Payload: []byte{1},
			Attrs: EventAttrs{Deadline: now + 100*sim.Millisecond}})
		pub.CancelPublication()
	})
	sys.Run(1 * sim.Second)
	if got != 0 {
		t.Fatalf("cancelled publication still delivered %d", got)
	}
}

func TestBandsValidation(t *testing.T) {
	b := DefaultBands()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.NRTMin = 200 // overlaps SRT band
	if b.Validate() == nil {
		t.Fatal("overlapping bands accepted")
	}
}

func TestSystemConfigErrors(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Nodes: 0}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := NewSystem(SystemConfig{Nodes: 500}); err == nil {
		t.Fatal("500 nodes accepted")
	}
	// Invalid calendar.
	cfg := calendar.DefaultConfig()
	cal := calendar.New(10*sim.Microsecond, cfg)
	cal.Add(calendar.Slot{Subject: 1, Publisher: 0, Payload: 8})
	if _, err := NewSystem(SystemConfig{Nodes: 2, Calendar: cal}); err == nil {
		t.Fatal("inadmissible calendar accepted")
	}
}

func TestMultiPublisherHRTChannel(t *testing.T) {
	// Two publishers feed the same subject; each needs its own slot (§3.1).
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 0, Payload: 8, Periodic: true},
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 1, Payload: 8, Periodic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := idealSystem(t, 3, cal)
	pub0, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub0.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	pub1, _ := sys.Node(1).MW.HRTEC(subjTemp)
	pub1.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	byPub := map[can.TxNode]int{}
	sub, _ := sys.Node(2).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(_ Event, di DeliveryInfo) { byPub[di.Publisher]++ }, nil)
	for r := int64(0); r < 5; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub0.Publish(Event{Subject: subjTemp, Payload: []byte{0}})
			pub1.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	sys.Run(sys.Cfg.Epoch + 5*cal.Round - 1)
	if byPub[0] != 5 || byPub[1] != 5 {
		t.Fatalf("per-publisher deliveries = %v, want 5 each", byPub)
	}
	if sys.TotalCounters().SlotMissed != 0 {
		t.Fatalf("slot misses on multi-publisher channel: %+v", sys.TotalCounters())
	}
}

func TestPriorityBandInvariantOnWire(t *testing.T) {
	// Trace every frame: the band relation P_HRT < P_sync < P_SRT < P_NRT
	// must hold for the traffic classes observed on the bus.
	cal := testCalendar(t, 1)
	sys, err := NewSystem(SystemConfig{
		Nodes: 3, Seed: 3, Calendar: cal, Epoch: 5 * sim.Millisecond,
		Sync:        clockSyncDefault(),
		MaxDriftPPM: 50, MaxInitialOffset: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bands := sys.Nodes[0].MW.Bands()
	violation := ""
	sys.Bus.Trace = func(e can.TraceEvent) {
		if e.Kind != can.TraceTxStart {
			return
		}
		p := e.Frame.ID.Prio()
		etag := e.Frame.ID.Etag()
		switch {
		case etag == binding.SyncEtag:
			if p != bands.SyncPrio {
				violation = "sync frame with wrong priority"
			}
		case p == bands.HRTPrio, p >= bands.SRT.Min && p <= bands.SRT.Max,
			p >= bands.NRTMin && p <= bands.NRTMax:
		default:
			violation = "frame outside every band"
		}
	}
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
	spub, _ := sys.Node(1).MW.SRTEC(subjDiag)
	spub.Announce(ChannelAttrs{}, nil)
	ssub, _ := sys.Node(2).MW.SRTEC(subjDiag)
	ssub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
	npub, _ := sys.Node(2).MW.NRTEC(subjBulk)
	npub.Announce(ChannelAttrs{Fragmentation: true}, nil)
	nsub, _ := sys.Node(0).MW.NRTEC(subjBulk)
	nsub.Subscribe(ChannelAttrs{Fragmentation: true}, SubscribeAttrs{}, func(Event, DeliveryInfo) {}, nil)
	for r := int64(0); r < 20; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{1}})
			now := sys.Node(1).MW.LocalTime()
			spub.Publish(Event{Subject: subjDiag, Payload: []byte{2},
				Attrs: EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
	}
	sys.K.At(sys.Cfg.Epoch, func() {
		npub.Publish(Event{Subject: subjBulk, Payload: make([]byte, 1000)})
	})
	sys.Run(sys.Cfg.Epoch + 20*cal.Round - 1)
	if violation != "" {
		t.Fatal(violation)
	}
	c := sys.TotalCounters()
	if c.DeliveredHRT == 0 || c.DeliveredSRT == 0 || c.DeliveredNRT == 0 {
		t.Fatalf("not all classes flowed: %+v", c)
	}
}

func TestHRTWithDriftingClocksStaysWithinPrecision(t *testing.T) {
	cal := testCalendar(t, 1)
	sys, err := NewSystem(SystemConfig{
		Nodes: 2, Seed: 7, Calendar: cal,
		Sync:        clockSyncDefault(),
		MaxDriftPPM: 100, MaxInitialOffset: 200 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	var deliveredAt []sim.Time
	late := 0
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(_ Event, di DeliveryInfo) {
			deliveredAt = append(deliveredAt, di.DeliveredAt)
			if di.Late {
				late++
			}
		}, nil)
	var publish func(r int64)
	publish = func(r int64) {
		if r >= 100 {
			return
		}
		// Publish keyed to the *publisher's* local clock, just before the
		// slot of round r.
		pubLocal := sys.Cfg.Epoch + sim.Time(r)*cal.Round - 100*sim.Microsecond
		sys.K.At(sys.Clocks[0].WhenLocal(sys.K.Now(), pubLocal), func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(r)}})
			publish(r + 1)
		})
	}
	publish(0)
	sys.Run(sys.Cfg.Epoch + 100*cal.Round - 1)
	if len(deliveredAt) < 95 {
		t.Fatalf("deliveries = %d, want ≥95", len(deliveredAt))
	}
	if late != 0 {
		t.Fatalf("late deliveries = %d", late)
	}
	// Application-visible period jitter is bounded by the sync precision,
	// not by network arbitration jitter.
	worst := sim.Duration(0)
	for i := 1; i < len(deliveredAt); i++ {
		d := deliveredAt[i] - deliveredAt[i-1] - cal.Round
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 30*sim.Microsecond {
		t.Fatalf("period jitter %v exceeds precision-level bound", worst)
	}
	if sys.TotalCounters().SlotMissed != 0 {
		t.Fatalf("slot misses with healthy drifting clocks: %+v", sys.TotalCounters())
	}
}

func clockSyncDefault() clock.SyncConfig {
	return clock.DefaultSyncConfig()
}
