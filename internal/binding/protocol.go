package binding

import (
	"errors"
	"fmt"
	"sort"

	"canec/internal/can"
	"canec/internal/sim"
)

// Wire message types (high nibble of payload byte 0 on the configuration
// channel). Bind requests carry a 4-bit request id in the low nibble so a
// client can tell replies to concurrent requests apart.
const (
	opBindReq = 0x1 // [op|rid][subject 7B]
	opBindAck = 0x2 // [op|rid][etag 2B LE][subject low 40 bits 5B]
	opBindErr = 0x3 // [op|rid][subject 7B]
	opJoinReq = 0x4 // [op][uid 7B]
	opJoinAck = 0x5 // [op][txnode 1B][uid low 48 bits 6B]

	// Hot-standby replication (see StandbyAgent). The agent's heartbeat
	// proves liveness and carries its allocation pointers; the checkpoint
	// pair walks the authoritative table one entry per beat, so a standby
	// that missed reply frames (it was down, or joined late) still
	// converges. A checkpoint entry needs a full 56-bit key plus its value,
	// which does not fit one 8-byte frame, so it is split into a key frame
	// followed by a value frame matched on the 4-bit sequence number.
	opBeat     = 0x6 // [op|seq][nextEtag 2B LE][nextNode 1B][bindCount 2B LE][nodeCount 2B LE]
	opCkptKey  = 0x7 // [op|seq][subject or uid 7B]
	opCkptBind = 0x8 // [op|seq][etag 2B LE]   (key was a subject)
	opCkptNode = 0x9 // [op|seq][txnode 1B]    (key was a uid)
)

// DefaultPrio is the fixed priority of configuration traffic: the least
// urgent non real-time level, as configuration and maintenance are exactly
// what NRT channels are for (§2.2.3).
const DefaultPrio can.Prio = can.MaxPrio

// AgentTxNode is the pre-assigned node number of the configuration agent.
const AgentTxNode can.TxNode = 0

func put56(dst []byte, v uint64) {
	for i := 0; i < 7; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func get56(src []byte) uint64 {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return v
}

// Agent serves bind and join requests. It owns the authoritative Table
// and the TxNode allocation. One agent exists per bus segment; the paper
// acknowledges the criticism of master-based schemes but uses a
// configuration master itself (ref [12]) since configuration is not on
// the critical real-time path.
type Agent struct {
	K     *sim.Kernel
	Ctrl  *can.Controller
	Table *Table
	Prio  can.Prio

	nodesByUID map[uint64]can.TxNode
	nextNode   can.TxNode

	hbCfg   HeartbeatConfig
	hbOn    bool
	hbSeq   uint8
	ckptIdx int
}

// NewAgent creates the configuration agent on the given controller (which
// must have TxNode AgentTxNode).
func NewAgent(k *sim.Kernel, ctrl *can.Controller) *Agent {
	return &Agent{
		K: k, Ctrl: ctrl, Table: NewTable(), Prio: DefaultPrio,
		nodesByUID: make(map[uint64]can.TxNode),
		nextNode:   AgentTxNode + 1,
	}
}

// HandleFrame processes a configuration-channel frame. The owner of the
// controller's receive path routes etag ConfigEtag frames here.
func (a *Agent) HandleFrame(f can.Frame, _ sim.Time) {
	if len(f.Data) < 8 {
		return
	}
	op, rid := f.Data[0]>>4, f.Data[0]&0x0f
	switch op {
	case opBindReq:
		subject := Subject(get56(f.Data[1:]))
		etag, err := a.Table.Bind(subject)
		out := make([]byte, 8)
		if err != nil {
			out[0] = opBindErr<<4 | rid
			put56(out[1:], uint64(subject))
		} else {
			out[0] = opBindAck<<4 | rid
			out[1] = byte(etag)
			out[2] = byte(etag >> 8)
			for i := 0; i < 5; i++ {
				out[3+i] = byte(uint64(subject) >> (8 * i))
			}
		}
		a.reply(out)

	case opJoinReq:
		uid := get56(f.Data[1:])
		node, ok := a.nodesByUID[uid]
		if !ok {
			if a.nextNode >= tempNodeLo {
				return // node space exhausted: stay silent, client times out
			}
			node = a.nextNode
			a.nextNode++
			a.nodesByUID[uid] = node
		}
		out := make([]byte, 8)
		out[0] = opJoinAck << 4
		out[1] = byte(node)
		for i := 0; i < 6; i++ {
			out[2+i] = byte(uid >> (8 * i))
		}
		a.reply(out)
	}
}

func (a *Agent) reply(payload []byte) {
	a.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(a.Prio, a.Ctrl.Node(), ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{})
}

// Nodes returns the number of assigned node numbers.
func (a *Agent) Nodes() int { return len(a.nodesByUID) }

// Preassign records a uid→node assignment made off-line (the statically
// configured stations of a segment), so a station re-joining after a crash
// gets its original node number back and fresh joins allocate beyond the
// static range.
func (a *Agent) Preassign(uid uint64, node can.TxNode) {
	a.nodesByUID[uid] = node
	if node >= a.nextNode {
		a.nextNode = node + 1
	}
}

// HeartbeatConfig parameterises the agent's liveness beacon and the
// standby's takeover watchdog.
type HeartbeatConfig struct {
	// Period between beats (and checkpoint pairs).
	Period sim.Duration
	// MissLimit is how many consecutive beat periods of agent silence the
	// standby tolerates before taking over. The takeover window is
	// therefore Period·MissLimit plus one watchdog tick.
	MissLimit int
}

// DefaultHeartbeatConfig beats every 25 ms and tolerates three misses, so
// an agent crash is detected within ~100 ms — one clock-sync period.
func DefaultHeartbeatConfig() HeartbeatConfig {
	return HeartbeatConfig{Period: 25 * sim.Millisecond, MissLimit: 3}
}

// WithDefaults fills zero fields.
func (c HeartbeatConfig) WithDefaults() HeartbeatConfig {
	d := DefaultHeartbeatConfig()
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.MissLimit <= 0 {
		c.MissLimit = d.MissLimit
	}
	return c
}

// StartHeartbeat begins the periodic liveness beacon: one beat frame per
// period carrying the allocation pointers, plus one checkpoint pair that
// cycles through the authoritative table and the uid→node map. Idempotent;
// the loop stops on its own once the agent's controller is detached (the
// crashed agent must not pile zombie frames into a muted controller).
func (a *Agent) StartHeartbeat(cfg HeartbeatConfig) {
	a.hbCfg = cfg.WithDefaults()
	if a.hbOn {
		return
	}
	a.hbOn = true
	var tick func()
	tick = func() {
		if !a.hbOn {
			return
		}
		if a.Ctrl.Muted() {
			a.hbOn = false // crashed: a restart re-arms explicitly
			return
		}
		a.beat()
		a.checkpoint()
		a.K.After(a.hbCfg.Period, tick)
	}
	a.K.After(0, tick)
}

// StopHeartbeat halts the beacon (the old agent demotes itself when it
// re-syncs as the new standby after a restart).
func (a *Agent) StopHeartbeat() { a.hbOn = false }

// beat emits one liveness frame with the allocation pointers, letting the
// standby align its replica's next-etag/next-node counters even when no
// requests are in flight.
func (a *Agent) beat() {
	a.hbSeq = (a.hbSeq + 1) & 0x0f
	out := make([]byte, 8)
	out[0] = opBeat<<4 | a.hbSeq
	next := a.Table.NextEtag()
	out[1] = byte(next)
	out[2] = byte(next >> 8)
	out[3] = byte(a.nextNode)
	binds := a.Table.Len()
	out[4] = byte(binds)
	out[5] = byte(binds >> 8)
	nodes := len(a.nodesByUID)
	out[6] = byte(nodes)
	out[7] = byte(nodes >> 8)
	a.reply(out)
}

// checkpoint emits the next entry of the replication walk: first every
// subject→etag binding (in deterministic etag order), then every uid→node
// assignment (in uid order), then wraps around. Each entry is a key frame
// plus a value frame sharing the beat's sequence number.
func (a *Agent) checkpoint() {
	binds := a.Table.Snapshot()
	uids := a.sortedUIDs()
	total := len(binds) + len(uids)
	if total == 0 {
		return
	}
	idx := a.ckptIdx % total
	a.ckptIdx = (idx + 1) % total
	key := make([]byte, 8)
	key[0] = opCkptKey<<4 | a.hbSeq
	val := make([]byte, 8)
	if idx < len(binds) {
		b := binds[idx]
		put56(key[1:], uint64(b.Subject))
		val[0] = opCkptBind<<4 | a.hbSeq
		val[1] = byte(b.Etag)
		val[2] = byte(b.Etag >> 8)
	} else {
		uid := uids[idx-len(binds)]
		put56(key[1:], uid)
		val[0] = opCkptNode<<4 | a.hbSeq
		val[1] = byte(a.nodesByUID[uid])
	}
	a.reply(key)
	a.reply(val)
}

// sortedUIDs returns the assigned uids in ascending order (determinism on
// the wire; see checkpoint).
func (a *Agent) sortedUIDs() []uint64 {
	out := make([]uint64, 0, len(a.nodesByUID))
	for uid := range a.nodesByUID {
		out = append(out, uid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Temporary TxNode range used by still-unconfigured nodes for their join
// requests. Collisions inside this range are possible and are resolved by
// the collision-detect/re-randomize loop in Client.Join.
const (
	tempNodeLo can.TxNode = 96
	tempNodeHi can.TxNode = can.MaxTxNode
)

// ErrAgentUnreachable is the terminal error of a request that exhausted
// its retry policy without ever hearing from an agent: the control plane
// is down (or unreachable from this node). Callers that want to recover
// should wait for agent liveness (Client.OnAgentAlive) and retry.
var ErrAgentUnreachable = errors.New("binding: configuration agent unreachable")

// ErrTimeout is the historical name of ErrAgentUnreachable, kept so
// existing errors.Is / equality checks continue to hold.
var ErrTimeout = ErrAgentUnreachable

// ErrRejected is reported when the agent answered with a bind error
// (etag space exhausted or invalid subject).
var ErrRejected = errors.New("binding: request rejected by agent")

// ErrNotAttached is reported immediately when Bind or Join is called while
// the client's controller is detached from the bus: the request could
// never be transmitted, so failing it synchronously beats leaking a
// pending entry that can only time out.
var ErrNotAttached = errors.New("binding: controller not attached to the bus")

// RetryPolicy is the unified retry schedule shared by bind, join and the
// lifecycle re-join: capped exponential backoff with deterministic jitter
// drawn from the simulation seed. Attempt n (0-based) waits
// Base·2ⁿ (capped at Cap) plus a uniform jitter of up to JitterFrac of
// that wait before retrying; after Attempts sends the request fails with
// ErrAgentUnreachable.
type RetryPolicy struct {
	Base       sim.Duration
	Cap        sim.Duration
	Attempts   int
	JitterFrac float64
}

// DefaultRetryPolicy matches the protocol's historical first-attempt
// timeout (50 ms) and attempt count, adding the exponential cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Base:       50 * sim.Millisecond,
		Cap:        400 * sim.Millisecond,
		Attempts:   5,
		JitterFrac: 0.1,
	}
}

// Backoff returns the wait before retrying after attempt (0-based). The
// jitter comes from the kernel RNG, so it is deterministic per seed.
func (p RetryPolicy) Backoff(attempt int, rng *sim.RNG) sim.Duration {
	d := p.Base
	if d <= 0 {
		d = DefaultRetryPolicy().Base
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if p.JitterFrac > 0 && rng != nil {
		d += sim.Duration(float64(d) * p.JitterFrac * rng.Float64())
	}
	return d
}

func (p RetryPolicy) attempts() int {
	if p.Attempts <= 0 {
		return DefaultRetryPolicy().Attempts
	}
	return p.Attempts
}

// Client issues bind and join requests from a regular node.
type Client struct {
	K    *sim.Kernel
	Ctrl *can.Controller
	Prio can.Prio
	// Retry is the shared retry policy for bind and join requests.
	Retry RetryPolicy

	// OnAgentAlive, if set, fires whenever a frame proving agent liveness
	// arrives (a reply, a heartbeat or a checkpoint frame). The lifecycle
	// manager uses it to re-run a failed re-join as soon as the control
	// plane is back.
	OnAgentAlive func()

	nextRid uint8
	pending map[uint8]*bindCall
	joining *joinCall
}

type bindCall struct {
	subject Subject
	cb      func(can.Etag, error)
	attempt int
	timer   sim.Timer
}

type joinCall struct {
	uid     uint64
	cb      func(can.TxNode, error)
	attempt int
	defers  int
	timer   sim.Timer
}

// NewClient creates a configuration client on the given controller.
func NewClient(k *sim.Kernel, ctrl *can.Controller) *Client {
	return &Client{
		K: k, Ctrl: ctrl, Prio: DefaultPrio,
		Retry:   DefaultRetryPolicy(),
		pending: make(map[uint8]*bindCall),
	}
}

// Bind asks the agent for the etag of subject; cb is invoked exactly once.
func (c *Client) Bind(subject Subject, cb func(can.Etag, error)) {
	if err := subject.Validate(); err != nil {
		cb(0, err)
		return
	}
	if c.Ctrl.Muted() {
		cb(0, ErrNotAttached)
		return
	}
	rid := c.nextRid & 0x0f
	c.nextRid++
	if _, busy := c.pending[rid]; busy {
		cb(0, fmt.Errorf("binding: too many concurrent bind requests"))
		return
	}
	call := &bindCall{subject: subject, cb: cb}
	c.pending[rid] = call
	c.sendBind(rid, call)
}

func (c *Client) sendBind(rid uint8, call *bindCall) {
	payload := make([]byte, 8)
	payload[0] = opBindReq<<4 | rid
	put56(payload[1:], uint64(call.subject))
	c.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(c.Prio, c.Ctrl.Node(), ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{})
	wait := c.Retry.Backoff(call.attempt, c.K.RNG())
	call.attempt++
	call.timer = c.K.After(wait, func() {
		if c.pending[rid] != call {
			return
		}
		if call.attempt >= c.Retry.attempts() {
			delete(c.pending, rid)
			call.cb(0, ErrAgentUnreachable)
			return
		}
		c.sendBind(rid, call)
	})
}

// Join requests a TxNode assignment for this node's hardware UID. The
// request is sent with a random temporary TxNode from the configuration
// range; an identifier collision with another joining node corrupts the
// frame for both (see can.Bus), is observed through single-shot failure,
// and triggers re-randomization — the classic collision-resolution loop.
func (c *Client) Join(uid uint64, cb func(can.TxNode, error)) {
	if uid == 0 || uid > uint64(MaxSubject) {
		cb(0, fmt.Errorf("binding: uid %#x out of range", uid))
		return
	}
	if c.Ctrl.Muted() {
		cb(0, ErrNotAttached)
		return
	}
	if c.joining != nil {
		cb(0, fmt.Errorf("binding: join already in progress"))
		return
	}
	call := &joinCall{uid: uid, cb: cb}
	c.joining = call
	c.sendJoin(call)
}

func (c *Client) sendJoin(call *joinCall) {
	if c.Ctrl.Pending() > 0 {
		// The previous attempt is still queued (congested bus): changing
		// the node number now would orphan it. Wait another round — but a
		// bounded number of them, or an agent outage under sustained load
		// would park the join here forever.
		call.defers++
		if call.defers > 4*c.Retry.attempts() {
			c.joining = nil
			call.cb(0, ErrAgentUnreachable)
			return
		}
		call.timer = c.K.After(c.Retry.Backoff(call.attempt, c.K.RNG()), func() {
			if c.joining == call {
				c.sendJoin(call)
			}
		})
		return
	}
	temp := tempNodeLo + can.TxNode(c.K.RNG().Intn(int(tempNodeHi-tempNodeLo)+1))
	c.Ctrl.SetNode(temp)
	payload := make([]byte, 8)
	payload[0] = opJoinReq << 4
	put56(payload[1:], call.uid)
	wait := c.Retry.Backoff(call.attempt, c.K.RNG())
	call.attempt++
	c.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(c.Prio, temp, ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{
		SingleShot: true,
		Done: func(ok bool, _ sim.Time) {
			if ok || c.joining != call {
				return
			}
			// Collision or corruption: back off a random interval and
			// retry with a fresh temporary node number. The per-attempt
			// timeout is superseded by this faster retry path.
			c.K.Cancel(call.timer)
			if call.attempt >= c.Retry.attempts() {
				c.joining = nil
				call.cb(0, ErrAgentUnreachable)
				return
			}
			c.K.After(c.K.RNG().ExpDuration(2*sim.Millisecond), func() {
				if c.joining == call {
					c.sendJoin(call)
				}
			})
		},
	})
	call.timer = c.K.After(wait, func() {
		if c.joining != call {
			return
		}
		if call.attempt >= c.Retry.attempts() {
			c.joining = nil
			call.cb(0, ErrAgentUnreachable)
			return
		}
		c.sendJoin(call)
	})
}

// HandleFrame processes a configuration-channel frame received by this
// client's node.
func (c *Client) HandleFrame(f can.Frame, _ sim.Time) {
	if len(f.Data) < 8 {
		return
	}
	op, rid := f.Data[0]>>4, f.Data[0]&0x0f
	switch op {
	case opBindAck, opBindErr, opJoinAck, opBeat, opCkptKey, opCkptBind, opCkptNode:
		// Any agent-originated frame proves the control plane is alive.
		if c.OnAgentAlive != nil {
			c.OnAgentAlive()
		}
	}
	switch op {
	case opBindAck:
		call, ok := c.pending[rid]
		if !ok {
			return
		}
		var low40 uint64
		for i := 0; i < 5; i++ {
			low40 |= uint64(f.Data[3+i]) << (8 * i)
		}
		if uint64(call.subject)&(1<<40-1) != low40 {
			return // reply to another node's request with the same rid
		}
		delete(c.pending, rid)
		c.K.Cancel(call.timer)
		etag := can.Etag(f.Data[1]) | can.Etag(f.Data[2])<<8
		call.cb(etag, nil)

	case opBindErr:
		call, ok := c.pending[rid]
		if !ok || uint64(call.subject) != get56(f.Data[1:]) {
			return
		}
		delete(c.pending, rid)
		c.K.Cancel(call.timer)
		call.cb(0, ErrRejected)

	case opJoinAck:
		call := c.joining
		if call == nil {
			return
		}
		var low48 uint64
		for i := 0; i < 6; i++ {
			low48 |= uint64(f.Data[2+i]) << (8 * i)
		}
		if call.uid&(1<<48-1) != low48 {
			return
		}
		if c.Ctrl.Pending() > 0 {
			// A concurrent request (e.g. a bind issued before the join
			// finished) is still queued under the temporary node number;
			// switching now would orphan it. Drop the ack — the agent's
			// uid→node assignment is stable, so the timeout retry will be
			// acked with the same number once the queue drains.
			return
		}
		c.joining = nil
		c.K.Cancel(call.timer)
		node := can.TxNode(f.Data[1])
		c.Ctrl.SetNode(node)
		call.cb(node, nil)
	}
}
