package binding

import (
	"errors"
	"fmt"

	"canec/internal/can"
	"canec/internal/sim"
)

// Wire message types (high nibble of payload byte 0 on the configuration
// channel). Bind requests carry a 4-bit request id in the low nibble so a
// client can tell replies to concurrent requests apart.
const (
	opBindReq = 0x1 // [op|rid][subject 7B]
	opBindAck = 0x2 // [op|rid][etag 2B LE][subject low 40 bits 5B]
	opBindErr = 0x3 // [op|rid][subject 7B]
	opJoinReq = 0x4 // [op][uid 7B]
	opJoinAck = 0x5 // [op][txnode 1B][uid low 48 bits 6B]
)

// DefaultPrio is the fixed priority of configuration traffic: the least
// urgent non real-time level, as configuration and maintenance are exactly
// what NRT channels are for (§2.2.3).
const DefaultPrio can.Prio = can.MaxPrio

// AgentTxNode is the pre-assigned node number of the configuration agent.
const AgentTxNode can.TxNode = 0

func put56(dst []byte, v uint64) {
	for i := 0; i < 7; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func get56(src []byte) uint64 {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return v
}

// Agent serves bind and join requests. It owns the authoritative Table
// and the TxNode allocation. One agent exists per bus segment; the paper
// acknowledges the criticism of master-based schemes but uses a
// configuration master itself (ref [12]) since configuration is not on
// the critical real-time path.
type Agent struct {
	K     *sim.Kernel
	Ctrl  *can.Controller
	Table *Table
	Prio  can.Prio

	nodesByUID map[uint64]can.TxNode
	nextNode   can.TxNode
}

// NewAgent creates the configuration agent on the given controller (which
// must have TxNode AgentTxNode).
func NewAgent(k *sim.Kernel, ctrl *can.Controller) *Agent {
	return &Agent{
		K: k, Ctrl: ctrl, Table: NewTable(), Prio: DefaultPrio,
		nodesByUID: make(map[uint64]can.TxNode),
		nextNode:   AgentTxNode + 1,
	}
}

// HandleFrame processes a configuration-channel frame. The owner of the
// controller's receive path routes etag ConfigEtag frames here.
func (a *Agent) HandleFrame(f can.Frame, _ sim.Time) {
	if len(f.Data) < 8 {
		return
	}
	op, rid := f.Data[0]>>4, f.Data[0]&0x0f
	switch op {
	case opBindReq:
		subject := Subject(get56(f.Data[1:]))
		etag, err := a.Table.Bind(subject)
		out := make([]byte, 8)
		if err != nil {
			out[0] = opBindErr<<4 | rid
			put56(out[1:], uint64(subject))
		} else {
			out[0] = opBindAck<<4 | rid
			out[1] = byte(etag)
			out[2] = byte(etag >> 8)
			for i := 0; i < 5; i++ {
				out[3+i] = byte(uint64(subject) >> (8 * i))
			}
		}
		a.reply(out)

	case opJoinReq:
		uid := get56(f.Data[1:])
		node, ok := a.nodesByUID[uid]
		if !ok {
			if a.nextNode >= tempNodeLo {
				return // node space exhausted: stay silent, client times out
			}
			node = a.nextNode
			a.nextNode++
			a.nodesByUID[uid] = node
		}
		out := make([]byte, 8)
		out[0] = opJoinAck << 4
		out[1] = byte(node)
		for i := 0; i < 6; i++ {
			out[2+i] = byte(uid >> (8 * i))
		}
		a.reply(out)
	}
}

func (a *Agent) reply(payload []byte) {
	a.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(a.Prio, a.Ctrl.Node(), ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{})
}

// Nodes returns the number of assigned node numbers.
func (a *Agent) Nodes() int { return len(a.nodesByUID) }

// Preassign records a uid→node assignment made off-line (the statically
// configured stations of a segment), so a station re-joining after a crash
// gets its original node number back and fresh joins allocate beyond the
// static range.
func (a *Agent) Preassign(uid uint64, node can.TxNode) {
	a.nodesByUID[uid] = node
	if node >= a.nextNode {
		a.nextNode = node + 1
	}
}

// Temporary TxNode range used by still-unconfigured nodes for their join
// requests. Collisions inside this range are possible and are resolved by
// the collision-detect/re-randomize loop in Client.Join.
const (
	tempNodeLo can.TxNode = 96
	tempNodeHi can.TxNode = can.MaxTxNode
)

// ErrTimeout is reported when a request exhausts its retries.
var ErrTimeout = errors.New("binding: request timed out")

// ErrRejected is reported when the agent answered with a bind error
// (etag space exhausted or invalid subject).
var ErrRejected = errors.New("binding: request rejected by agent")

// Client issues bind and join requests from a regular node.
type Client struct {
	K    *sim.Kernel
	Ctrl *can.Controller
	Prio can.Prio
	// Timeout per attempt and the number of attempts before giving up.
	Timeout  sim.Duration
	Attempts int

	nextRid uint8
	pending map[uint8]*bindCall
	joining *joinCall
}

type bindCall struct {
	subject Subject
	cb      func(can.Etag, error)
	left    int
	timer   sim.Timer
}

type joinCall struct {
	uid   uint64
	cb    func(can.TxNode, error)
	left  int
	timer sim.Timer
}

// NewClient creates a configuration client on the given controller.
func NewClient(k *sim.Kernel, ctrl *can.Controller) *Client {
	return &Client{
		K: k, Ctrl: ctrl, Prio: DefaultPrio,
		Timeout:  50 * sim.Millisecond,
		Attempts: 5,
		pending:  make(map[uint8]*bindCall),
	}
}

// Bind asks the agent for the etag of subject; cb is invoked exactly once.
func (c *Client) Bind(subject Subject, cb func(can.Etag, error)) {
	if err := subject.Validate(); err != nil {
		cb(0, err)
		return
	}
	rid := c.nextRid & 0x0f
	c.nextRid++
	if _, busy := c.pending[rid]; busy {
		cb(0, fmt.Errorf("binding: too many concurrent bind requests"))
		return
	}
	call := &bindCall{subject: subject, cb: cb, left: c.Attempts}
	c.pending[rid] = call
	c.sendBind(rid, call)
}

func (c *Client) sendBind(rid uint8, call *bindCall) {
	payload := make([]byte, 8)
	payload[0] = opBindReq<<4 | rid
	put56(payload[1:], uint64(call.subject))
	c.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(c.Prio, c.Ctrl.Node(), ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{})
	call.left--
	call.timer = c.K.After(c.Timeout, func() {
		if c.pending[rid] != call {
			return
		}
		if call.left <= 0 {
			delete(c.pending, rid)
			call.cb(0, ErrTimeout)
			return
		}
		c.sendBind(rid, call)
	})
}

// Join requests a TxNode assignment for this node's hardware UID. The
// request is sent with a random temporary TxNode from the configuration
// range; an identifier collision with another joining node corrupts the
// frame for both (see can.Bus), is observed through single-shot failure,
// and triggers re-randomization — the classic collision-resolution loop.
func (c *Client) Join(uid uint64, cb func(can.TxNode, error)) {
	if uid == 0 || uid > uint64(MaxSubject) {
		cb(0, fmt.Errorf("binding: uid %#x out of range", uid))
		return
	}
	if c.joining != nil {
		cb(0, fmt.Errorf("binding: join already in progress"))
		return
	}
	call := &joinCall{uid: uid, cb: cb, left: c.Attempts}
	c.joining = call
	c.sendJoin(call)
}

func (c *Client) sendJoin(call *joinCall) {
	if c.Ctrl.Pending() > 0 {
		// The previous attempt is still queued (congested bus): changing
		// the node number now would orphan it. Wait another round.
		call.timer = c.K.After(c.Timeout, func() {
			if c.joining == call {
				c.sendJoin(call)
			}
		})
		return
	}
	temp := tempNodeLo + can.TxNode(c.K.RNG().Intn(int(tempNodeHi-tempNodeLo)+1))
	c.Ctrl.SetNode(temp)
	payload := make([]byte, 8)
	payload[0] = opJoinReq << 4
	put56(payload[1:], call.uid)
	call.left--
	c.Ctrl.Submit(can.Frame{
		ID:   can.MakeID(c.Prio, temp, ConfigEtag),
		Data: payload,
	}, can.SubmitOpts{
		SingleShot: true,
		Done: func(ok bool, _ sim.Time) {
			if ok || c.joining != call {
				return
			}
			// Collision or corruption: back off a random interval and
			// retry with a fresh temporary node number. The per-attempt
			// timeout is superseded by this faster retry path.
			c.K.Cancel(call.timer)
			if call.left <= 0 {
				c.joining = nil
				call.cb(0, ErrTimeout)
				return
			}
			c.K.After(c.K.RNG().ExpDuration(2*sim.Millisecond), func() {
				if c.joining == call {
					c.sendJoin(call)
				}
			})
		},
	})
	call.timer = c.K.After(c.Timeout, func() {
		if c.joining != call {
			return
		}
		if call.left <= 0 {
			c.joining = nil
			call.cb(0, ErrTimeout)
			return
		}
		c.sendJoin(call)
	})
}

// HandleFrame processes a configuration-channel frame received by this
// client's node.
func (c *Client) HandleFrame(f can.Frame, _ sim.Time) {
	if len(f.Data) < 8 {
		return
	}
	op, rid := f.Data[0]>>4, f.Data[0]&0x0f
	switch op {
	case opBindAck:
		call, ok := c.pending[rid]
		if !ok {
			return
		}
		var low40 uint64
		for i := 0; i < 5; i++ {
			low40 |= uint64(f.Data[3+i]) << (8 * i)
		}
		if uint64(call.subject)&(1<<40-1) != low40 {
			return // reply to another node's request with the same rid
		}
		delete(c.pending, rid)
		c.K.Cancel(call.timer)
		etag := can.Etag(f.Data[1]) | can.Etag(f.Data[2])<<8
		call.cb(etag, nil)

	case opBindErr:
		call, ok := c.pending[rid]
		if !ok || uint64(call.subject) != get56(f.Data[1:]) {
			return
		}
		delete(c.pending, rid)
		c.K.Cancel(call.timer)
		call.cb(0, ErrRejected)

	case opJoinAck:
		call := c.joining
		if call == nil {
			return
		}
		var low48 uint64
		for i := 0; i < 6; i++ {
			low48 |= uint64(f.Data[2+i]) << (8 * i)
		}
		if call.uid&(1<<48-1) != low48 {
			return
		}
		if c.Ctrl.Pending() > 0 {
			// A concurrent request (e.g. a bind issued before the join
			// finished) is still queued under the temporary node number;
			// switching now would orphan it. Drop the ack — the agent's
			// uid→node assignment is stable, so the timeout retry will be
			// acked with the same number once the queue drains.
			return
		}
		c.joining = nil
		c.K.Cancel(call.timer)
		node := can.TxNode(f.Data[1])
		c.Ctrl.SetNode(node)
		call.cb(node, nil)
	}
}
