package binding

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// faultyRig wires an agent plus n clients on a bus with the given
// consistent-error rate.
func faultyRig(n int, seed uint64, errRate float64) (*sim.Kernel, *can.Bus, *Agent, []*Client) {
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	bus.Injector = can.RandomErrors{Rate: errRate}
	actrl := bus.Attach(AgentTxNode)
	agent := NewAgent(k, actrl)
	actrl.OnReceive = func(f can.Frame, at sim.Time) {
		if f.ID.Etag() == ConfigEtag {
			agent.HandleFrame(f, at)
		}
	}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		ctrl := bus.Attach(tempNodeLo + can.TxNode(i))
		cl := NewClient(k, ctrl)
		ctrl.OnReceive = func(f can.Frame, at sim.Time) {
			if f.ID.Etag() == ConfigEtag {
				cl.HandleFrame(f, at)
			}
		}
		clients[i] = cl
	}
	return k, bus, agent, clients
}

// TestBindConvergesUnderErrors: consistent errors are masked by CAN's
// automatic retransmission, so binding must succeed without even needing
// the application-level retry.
func TestBindConvergesUnderErrors(t *testing.T) {
	for _, rate := range []float64{0.1, 0.3} {
		k, _, _, clients := faultyRig(3, 11, rate)
		okCount := 0
		for i, cl := range clients {
			cl.Bind(Subject(0x900+i), func(e can.Etag, err error) {
				if err == nil && e != 0 {
					okCount++
				}
			})
		}
		k.Run(5 * sim.Second)
		if okCount != 3 {
			t.Fatalf("rate %v: %d/3 binds succeeded", rate, okCount)
		}
	}
}

// TestJoinConvergesUnderErrors: joins are single-shot, so every corrupted
// attempt surfaces as a failure and triggers the randomized retry; with
// enough attempts the protocol still converges.
func TestJoinConvergesUnderErrors(t *testing.T) {
	k, _, agent, clients := faultyRig(4, 13, 0.2)
	for _, cl := range clients {
		cl.Retry.Attempts = 50
	}
	joined := 0
	for i, cl := range clients {
		cl.Join(uint64(0x7000+i), func(n can.TxNode, err error) {
			if err == nil && n != 0 {
				joined++
			}
		})
	}
	k.Run(20 * sim.Second)
	if joined != 4 {
		t.Fatalf("%d/4 joins converged under 20%% error rate", joined)
	}
	if agent.Nodes() != 4 {
		t.Fatalf("agent assigned %d nodes", agent.Nodes())
	}
}

// TestBindSurvivesLossyAcks: inconsistent omissions can eat ACKs; the
// client's timeout retry must recover (the agent's Bind is idempotent, so
// the retry returns the same etag).
func TestBindSurvivesLossyAcks(t *testing.T) {
	k, bus, _, clients := faultyRig(1, 17, 0)
	drop := 3
	bus.Injector = can.FuncInjector(func(f can.Frame, sender, _ int, _ sim.Time, _ *sim.RNG) can.Fault {
		// Drop the first ACKs (from the agent, node index 0) silently at
		// the client (controller index 1).
		if sender == 0 && drop > 0 {
			drop--
			return can.Fault{Kind: can.FaultOmission, Victims: map[int]bool{1: true}}
		}
		return can.Fault{}
	})
	cl := clients[0]
	cl.Retry.Base = 20 * sim.Millisecond
	cl.Retry.Attempts = 10
	var got can.Etag
	cl.Bind(0x42, func(e can.Etag, err error) {
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		got = e
	})
	k.Run(5 * sim.Second)
	if got == 0 {
		t.Fatal("bind never recovered from lost ACKs")
	}
}
