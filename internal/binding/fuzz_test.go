package binding

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// FuzzAgentHandleFrame feeds arbitrary configuration-channel payloads into
// the agent's wire parser. The agent must never panic and must never hand
// out a node number from the temporary range, no matter how mangled the
// request is.
func FuzzAgentHandleFrame(f *testing.F) {
	f.Add([]byte{opBindReq<<4 | 3, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{opJoinReq << 4, 0xEE, 0xFF, 0xC0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Add([]byte{opBindAck << 4}) // reply op sent at the agent: ignored
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > can.MaxPayload {
			data = data[:can.MaxPayload]
		}
		k := sim.NewKernel(1)
		bus := can.NewBus(k, can.DefaultBitRate)
		agent := NewAgent(k, bus.Attach(AgentTxNode))
		agent.HandleFrame(can.Frame{
			ID:   can.MakeID(DefaultPrio, tempNodeLo, ConfigEtag),
			Data: data,
		}, 0)
		k.Run(10 * sim.Millisecond) // drain any reply the parser queued
		for _, n := range agent.nodesByUID {
			if n >= tempNodeLo {
				t.Fatalf("agent assigned temporary node %d", n)
			}
		}
	})
}

// FuzzClientHandleFrame feeds arbitrary payloads into the client's parser
// while a bind and a join call are in flight: no input may panic it or
// complete a call with an answer for a different subject or uid.
func FuzzClientHandleFrame(f *testing.F) {
	f.Add([]byte{opBindAck << 4, 0x34, 0x12, 100, 0, 0, 0, 0})
	f.Add([]byte{opJoinAck << 4, 5, 0xEE, 0xFF, 0xC0, 0, 0, 0})
	f.Add([]byte{opBindErr << 4, 100, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > can.MaxPayload {
			data = data[:can.MaxPayload]
		}
		k := sim.NewKernel(1)
		bus := can.NewBus(k, can.DefaultBitRate)
		cl := NewClient(k, bus.Attach(tempNodeLo))
		cl.Bind(100, func(can.Etag, error) {})
		cl.Join(0xC0FFEE, func(node can.TxNode, err error) {
			if err == nil && node >= tempNodeLo {
				t.Fatalf("join completed with temporary node %d", node)
			}
		})
		cl.HandleFrame(can.Frame{
			ID:   can.MakeID(DefaultPrio, AgentTxNode, ConfigEtag),
			Data: data,
		}, 0)
	})
}

// FuzzPut56RoundTrip pins the 56-bit wire encoding helpers.
func FuzzPut56RoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xC0FFEE00))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, v uint64) {
		var buf [7]byte
		put56(buf[:], v)
		if got, want := get56(buf[:]), v&((1<<56)-1); got != want {
			t.Fatalf("get56(put56(%#x)) = %#x, want %#x", v, got, want)
		}
	})
}
