package binding

import (
	"errors"
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// TestBindDetachedRejectsImmediately: Bind on a detached controller fails
// synchronously with ErrNotAttached and leaves no pending entry behind.
func TestBindDetachedRejectsImmediately(t *testing.T) {
	k, _, clients := protoRig(1, 1)
	cl := clients[0]
	cl.Ctrl.Detach()
	var gotErr error
	done := false
	cl.Bind(500, func(_ can.Etag, err error) { gotErr = err; done = true })
	if !done || !errors.Is(gotErr, ErrNotAttached) {
		t.Fatalf("done=%v err=%v, want immediate ErrNotAttached", done, gotErr)
	}
	if len(cl.pending) != 0 {
		t.Fatalf("%d pending entries leaked by the rejected bind", len(cl.pending))
	}
	// Reattached, the same client binds normally.
	cl.Ctrl.Reattach()
	var e can.Etag
	cl.Bind(500, func(got can.Etag, err error) {
		if err != nil {
			t.Errorf("bind after reattach: %v", err)
		}
		e = got
	})
	k.Run(1 * sim.Second)
	if e == 0 {
		t.Fatal("bind after reattach did not complete")
	}
}

// TestJoinDetachedRejectsImmediately: same contract for Join.
func TestJoinDetachedRejectsImmediately(t *testing.T) {
	_, _, clients := protoRig(1, 2)
	cl := clients[0]
	cl.Ctrl.Detach()
	var gotErr error
	cl.Join(0xBEEF, func(_ can.TxNode, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNotAttached) {
		t.Fatalf("err=%v, want ErrNotAttached", gotErr)
	}
	if cl.joining != nil {
		t.Fatal("rejected join left a joining call pending")
	}
}

// TestJoinUnreachableIsTerminal: with no agent on the bus, Join exhausts
// the retry schedule and fails exactly once with ErrAgentUnreachable —
// the historical ErrTimeout is the same sentinel.
func TestJoinUnreachableIsTerminal(t *testing.T) {
	k := sim.NewKernel(3)
	bus := can.NewBus(k, can.DefaultBitRate)
	cl := NewClient(k, bus.Attach(tempNodeLo))
	cl.Retry = RetryPolicy{Base: 10 * sim.Millisecond, Attempts: 3}
	fails := 0
	var gotErr error
	cl.Join(0xBEEF, func(_ can.TxNode, err error) { gotErr = err; fails++ })
	k.Run(5 * sim.Second)
	if fails != 1 {
		t.Fatalf("join callback fired %d times, want exactly 1", fails)
	}
	if !errors.Is(gotErr, ErrAgentUnreachable) {
		t.Fatalf("err = %v, want ErrAgentUnreachable", gotErr)
	}
	if !errors.Is(ErrTimeout, ErrAgentUnreachable) {
		t.Fatal("ErrTimeout is no longer an alias of ErrAgentUnreachable")
	}
}

// TestBackoffSchedule pins the capped exponential schedule without jitter
// and the fallback to defaults for zeroed fields.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Base: 10 * sim.Millisecond, Cap: 60 * sim.Millisecond, Attempts: 6}
	want := []sim.Duration{
		10 * sim.Millisecond, // attempt 0
		20 * sim.Millisecond,
		40 * sim.Millisecond,
		60 * sim.Millisecond, // doubled to 80, capped
		60 * sim.Millisecond, // stays at the cap
	}
	for i, w := range want {
		if got := p.Backoff(i, nil); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	var zero RetryPolicy
	if got := zero.Backoff(0, nil); got != DefaultRetryPolicy().Base {
		t.Fatalf("zero-policy Backoff(0) = %v, want default base %v", got, DefaultRetryPolicy().Base)
	}
	if zero.attempts() != DefaultRetryPolicy().Attempts {
		t.Fatalf("zero-policy attempts = %d, want %d", zero.attempts(), DefaultRetryPolicy().Attempts)
	}
}

// TestBackoffJitterDeterministic: jitter is bounded by JitterFrac and two
// RNGs with the same seed produce identical schedules.
func TestBackoffJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Base: 10 * sim.Millisecond, Cap: 80 * sim.Millisecond, Attempts: 5, JitterFrac: 0.25}
	a := sim.NewKernel(7).RNG()
	b := sim.NewKernel(7).RNG()
	for i := 0; i < 5; i++ {
		base := p.Backoff(i, nil)
		ja := p.Backoff(i, a)
		jb := p.Backoff(i, b)
		if ja != jb {
			t.Fatalf("attempt %d: same seed diverges: %v vs %v", i, ja, jb)
		}
		if ja < base || ja > base+sim.Duration(float64(base)*p.JitterFrac) {
			t.Fatalf("attempt %d: jittered wait %v outside [%v, base+25%%]", i, ja, base)
		}
	}
}
