package binding

import (
	"canec/internal/can"
	"canec/internal/sim"
)

// StandbyAgent is the hot standby of the configuration agent. It passively
// replicates the authoritative subject→etag table and the uid→TxNode
// allocation by snooping the configuration channel — the agent's reply
// frames pair request content with allocation results, the periodic beat
// carries the allocation pointers, and the checkpoint stream walks the full
// state one entry per beat so a standby that missed traffic still
// converges. When the agent falls silent for longer than the configured
// heartbeat window, the standby deterministically takes over the agent
// role: its replica starts serving bind and join requests and beating.
//
// The takeover transfers the *role*, not the wire identity: replies are
// sent from the standby station's own TxNode. Clients match replies purely
// on content (request id + subject / uid), never on the sender's node
// number, so the switch is invisible to them.
type StandbyAgent struct {
	K   *sim.Kernel
	Cfg HeartbeatConfig

	// OnTakeover, if set, fires once when the standby promotes itself.
	OnTakeover func(at sim.Time)

	inner    *Agent
	active   bool
	stopped  bool
	lastSeen sim.Time

	// Passive-snoop pairing state: outstanding bind requests by rid, and
	// joining uids by their low 48 bits (the ack truncates the uid).
	reqSubject map[uint8]Subject
	joinUID    map[uint64]uint64
	// Checkpoint pairing: key frames by sequence number, and whether the
	// key has been consumed by a value frame.
	ckptKey map[uint8]uint64
}

// NewStandbyAgent wraps a replica agent (whose Table and preassignments
// the caller seeds with the off-line configuration) as a hot standby.
func NewStandbyAgent(k *sim.Kernel, replica *Agent, cfg HeartbeatConfig) *StandbyAgent {
	return &StandbyAgent{
		K: k, Cfg: cfg.WithDefaults(), inner: replica,
		reqSubject: make(map[uint8]Subject),
		joinUID:    make(map[uint64]uint64),
		ckptKey:    make(map[uint8]uint64),
	}
}

// Agent returns the replica, which becomes the acting agent on takeover.
func (s *StandbyAgent) Agent() *Agent { return s.inner }

// Active reports whether the standby has taken over the agent role.
func (s *StandbyAgent) Active() bool { return s.active }

// Start arms the takeover watchdog. Each tick checks how long the agent
// has been silent; past Period·MissLimit the standby promotes itself.
func (s *StandbyAgent) Start() {
	s.lastSeen = s.K.Now()
	var tick func()
	tick = func() {
		if s.stopped || s.active {
			return
		}
		if s.inner.Ctrl.Muted() {
			// The standby station itself is down: it can neither observe
			// nor take over. Keep ticking; a restart re-syncs the replica
			// through the checkpoint stream.
			s.lastSeen = s.K.Now()
		} else if s.K.Now()-s.lastSeen > s.Cfg.Period*sim.Duration(s.Cfg.MissLimit) {
			s.takeover()
			return
		}
		s.K.After(s.Cfg.Period, tick)
	}
	s.K.After(s.Cfg.Period, tick)
}

// Stop permanently disarms the standby (its station was decommissioned).
func (s *StandbyAgent) Stop() { s.stopped = true }

// takeover promotes the replica to acting agent: it starts serving
// requests (via HandleFrame delegation) and beating, announcing the new
// regime to every client and any future standby.
func (s *StandbyAgent) takeover() {
	s.active = true
	now := s.K.Now()
	s.inner.StartHeartbeat(s.Cfg)
	if s.OnTakeover != nil {
		s.OnTakeover(now)
	}
}

// HandleFrame processes one configuration-channel frame. Passive mode
// snoops; active mode serves through the replica.
func (s *StandbyAgent) HandleFrame(f can.Frame, at sim.Time) {
	if s.stopped {
		return
	}
	if s.active {
		s.inner.HandleFrame(f, at)
		return
	}
	if len(f.Data) < 8 {
		return
	}
	op, low := f.Data[0]>>4, f.Data[0]&0x0f
	switch op {
	case opBindAck, opBindErr, opJoinAck, opBeat, opCkptKey, opCkptBind, opCkptNode:
		// Agent-originated: the agent is alive.
		s.lastSeen = at
	}
	switch op {
	case opBindReq:
		s.reqSubject[low] = Subject(get56(f.Data[1:]))

	case opBindAck:
		subj, ok := s.reqSubject[low]
		if !ok {
			return
		}
		var low40 uint64
		for i := 0; i < 5; i++ {
			low40 |= uint64(f.Data[3+i]) << (8 * i)
		}
		if uint64(subj)&(1<<40-1) != low40 {
			return // ack for another node's request under the same rid
		}
		delete(s.reqSubject, low)
		etag := can.Etag(f.Data[1]) | can.Etag(f.Data[2])<<8
		s.apply(subj, etag)

	case opBindErr:
		if subj, ok := s.reqSubject[low]; ok && uint64(subj) == get56(f.Data[1:]) {
			delete(s.reqSubject, low)
		}

	case opJoinReq:
		uid := get56(f.Data[1:])
		s.joinUID[uid&(1<<48-1)] = uid

	case opJoinAck:
		var low48 uint64
		for i := 0; i < 6; i++ {
			low48 |= uint64(f.Data[2+i]) << (8 * i)
		}
		uid, ok := s.joinUID[low48]
		if !ok {
			return
		}
		delete(s.joinUID, low48)
		s.inner.Preassign(uid, can.TxNode(f.Data[1]))

	case opBeat:
		next := can.Etag(f.Data[1]) | can.Etag(f.Data[2])<<8
		s.inner.Table.AdvanceNext(next)
		if n := can.TxNode(f.Data[3]); n > s.inner.nextNode {
			s.inner.nextNode = n
		}

	case opCkptKey:
		s.ckptKey[low] = get56(f.Data[1:])

	case opCkptBind:
		key, ok := s.ckptKey[low]
		if !ok {
			return
		}
		delete(s.ckptKey, low)
		etag := can.Etag(f.Data[1]) | can.Etag(f.Data[2])<<8
		s.apply(Subject(key), etag)

	case opCkptNode:
		key, ok := s.ckptKey[low]
		if !ok {
			return
		}
		delete(s.ckptKey, low)
		s.inner.Preassign(key, can.TxNode(f.Data[1]))
	}
}

// apply installs a replicated binding in the replica table. A conflict
// (the replica diverged, e.g. a stale snoop) is resolved in favour of the
// authoritative value heard on the wire.
func (s *StandbyAgent) apply(subj Subject, etag can.Etag) {
	if err := s.inner.Table.BindFixed(subj, etag); err == nil {
		return
	}
	// The wire is authoritative: drop whatever the replica had for this
	// subject or etag and retry.
	if old, ok := s.inner.Table.Lookup(subj); ok {
		s.inner.Table.unbind(subj, old)
	}
	if oldSubj, ok := s.inner.Table.SubjectOf(etag); ok {
		s.inner.Table.unbind(oldSubj, etag)
	}
	_ = s.inner.Table.BindFixed(subj, etag)
}
