// Package binding implements the paper's dynamic binding layer (§2.1,
// §3.5, detailed in refs [13][12]): the mapping from application-level
// subjects — system-wide unique identifiers naming an event channel — to
// the 14-bit etag field of the CAN identifier, plus the configuration
// protocol that assigns each node its unique 7-bit TxNode number.
//
// Two binding modes are provided. A static Table is computed off-line and
// distributed with the calendar; this is how hard real-time channels are
// bound, since their slot reservations are off-line anyway. The dynamic
// protocol (Agent/Client) binds soft and non real-time channels at run
// time over a reserved configuration channel.
package binding

import (
	"errors"
	"fmt"
	"sort"

	"canec/internal/can"
)

// Subject is the application-level unique identifier of an event channel.
// The wire protocol carries the low 56 bits; Validate rejects larger
// values.
type Subject uint64

// MaxSubject is the largest subject the wire protocol can carry.
const MaxSubject = Subject(1)<<56 - 1

// Validate reports whether the subject fits the wire encoding.
func (s Subject) Validate() error {
	if s > MaxSubject {
		return fmt.Errorf("binding: subject %#x exceeds 56 bits", uint64(s))
	}
	if s == 0 {
		return errors.New("binding: subject 0 is reserved")
	}
	return nil
}

// Reserved etags.
const (
	// ConfigEtag is the configuration/binding channel (etag 0).
	ConfigEtag can.Etag = 0
	// SyncEtag is the clock synchronization channel (highest etag).
	SyncEtag can.Etag = can.MaxEtag
)

// ErrExhausted is returned when no free etag remains.
var ErrExhausted = errors.New("binding: etag space exhausted")

// ErrConflict is returned when a fixed binding clashes with an existing
// one.
var ErrConflict = errors.New("binding: conflicting binding")

// Table is a bidirectional subject↔etag map with allocation. It is pure
// data — the Agent wraps it with the wire protocol — so off-line tools,
// tests and the static HRT configuration can use it directly.
type Table struct {
	fwd  map[Subject]can.Etag
	rev  map[can.Etag]Subject
	next can.Etag
}

// NewTable returns an empty table whose allocator skips the reserved
// etags.
func NewTable() *Table {
	return &Table{
		fwd:  make(map[Subject]can.Etag),
		rev:  make(map[can.Etag]Subject),
		next: ConfigEtag + 1,
	}
}

// Bind returns the etag bound to the subject, allocating one if needed.
// Binding is idempotent: every node asking for the same subject receives
// the same etag, which is what makes subject-based filtering work in the
// communication controller.
func (t *Table) Bind(s Subject) (can.Etag, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if e, ok := t.fwd[s]; ok {
		return e, nil
	}
	for t.next < SyncEtag {
		e := t.next
		t.next++
		if _, taken := t.rev[e]; taken {
			continue
		}
		t.fwd[s] = e
		t.rev[e] = s
		return e, nil
	}
	return 0, ErrExhausted
}

// BindFixed installs a pre-computed binding (off-line HRT configuration).
func (t *Table) BindFixed(s Subject, e can.Etag) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if e == ConfigEtag || e == SyncEtag {
		return fmt.Errorf("binding: etag %d is reserved", e)
	}
	if cur, ok := t.fwd[s]; ok && cur != e {
		return ErrConflict
	}
	if cur, ok := t.rev[e]; ok && cur != s {
		return ErrConflict
	}
	t.fwd[s] = e
	t.rev[e] = s
	return nil
}

// unbind removes one entry. Only the standby agent's wire-authoritative
// conflict resolution uses it; bindings are otherwise immutable for the
// lifetime of a configuration.
func (t *Table) unbind(s Subject, e can.Etag) {
	delete(t.fwd, s)
	delete(t.rev, e)
}

// Lookup returns the etag bound to a subject.
func (t *Table) Lookup(s Subject) (can.Etag, bool) {
	e, ok := t.fwd[s]
	return e, ok
}

// SubjectOf returns the subject bound to an etag.
func (t *Table) SubjectOf(e can.Etag) (Subject, bool) {
	s, ok := t.rev[e]
	return s, ok
}

// Len returns the number of bindings.
func (t *Table) Len() int { return len(t.fwd) }

// NextEtag returns the allocator's next-candidate etag, used by the
// standby agent to keep its replica allocation pointer aligned with the
// authoritative table.
func (t *Table) NextEtag() can.Etag { return t.next }

// AdvanceNext moves the allocation pointer forward to at least e. It never
// moves backward, so a replica applying checkpoint frames out of order
// converges to the authoritative pointer.
func (t *Table) AdvanceNext(e can.Etag) {
	if e > t.next {
		t.next = e
	}
}

// Binding is one subject↔etag entry of a Snapshot.
type Binding struct {
	Subject Subject
	Etag    can.Etag
}

// Snapshot returns the table's entries ordered by etag. The deterministic
// order matters: the agent's checkpoint stream cycles through the snapshot,
// and campaign reproducibility per seed forbids map-iteration order leaking
// onto the wire.
func (t *Table) Snapshot() []Binding {
	out := make([]Binding, 0, len(t.fwd))
	for s, e := range t.fwd {
		out = append(out, Binding{Subject: s, Etag: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Etag < out[j].Etag })
	return out
}

// Clone returns an independent copy, used to distribute the off-line
// configuration to every node.
func (t *Table) Clone() *Table {
	c := NewTable()
	for s, e := range t.fwd {
		c.fwd[s] = e
		c.rev[e] = s
	}
	c.next = t.next
	return c
}
