package binding

import (
	"testing"
	"testing/quick"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestSubjectValidate(t *testing.T) {
	if Subject(0).Validate() == nil {
		t.Fatal("subject 0 accepted")
	}
	if (MaxSubject + 1).Validate() == nil {
		t.Fatal("oversized subject accepted")
	}
	if Subject(42).Validate() != nil {
		t.Fatal("valid subject rejected")
	}
}

func TestTableBindIdempotent(t *testing.T) {
	tb := NewTable()
	e1, err := tb.Bind(100)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tb.Bind(100)
	if err != nil || e2 != e1 {
		t.Fatalf("rebind gave %d/%v, want %d", e2, err, e1)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableBindDistinct(t *testing.T) {
	tb := NewTable()
	seen := make(map[can.Etag]bool)
	for s := Subject(1); s <= 100; s++ {
		e, err := tb.Bind(s)
		if err != nil {
			t.Fatal(err)
		}
		if seen[e] {
			t.Fatalf("etag %d reused", e)
		}
		if e == ConfigEtag || e == SyncEtag {
			t.Fatalf("reserved etag %d allocated", e)
		}
		seen[e] = true
	}
}

func TestTableBidirectional(t *testing.T) {
	tb := NewTable()
	e, _ := tb.Bind(7)
	if got, ok := tb.Lookup(7); !ok || got != e {
		t.Fatal("Lookup failed")
	}
	if got, ok := tb.SubjectOf(e); !ok || got != 7 {
		t.Fatal("SubjectOf failed")
	}
	if _, ok := tb.Lookup(99); ok {
		t.Fatal("phantom lookup")
	}
}

func TestTableBindFixed(t *testing.T) {
	tb := NewTable()
	if err := tb.BindFixed(5, 100); err != nil {
		t.Fatal(err)
	}
	if err := tb.BindFixed(5, 100); err != nil {
		t.Fatal("idempotent fixed bind rejected")
	}
	if err := tb.BindFixed(5, 101); err != ErrConflict {
		t.Fatalf("conflicting subject rebind: %v", err)
	}
	if err := tb.BindFixed(6, 100); err != ErrConflict {
		t.Fatalf("conflicting etag rebind: %v", err)
	}
	if err := tb.BindFixed(7, ConfigEtag); err == nil {
		t.Fatal("reserved etag accepted")
	}
	if err := tb.BindFixed(7, SyncEtag); err == nil {
		t.Fatal("reserved etag accepted")
	}
	// Dynamic allocation must skip the fixed etag.
	for s := Subject(10); s < 120; s++ {
		e, err := tb.Bind(s)
		if err != nil {
			t.Fatal(err)
		}
		if e == 100 && s != 5 {
			t.Fatal("allocator reused fixed etag")
		}
	}
}

func TestTableExhaustion(t *testing.T) {
	tb := NewTable()
	for s := Subject(1); ; s++ {
		if _, err := tb.Bind(s); err != nil {
			if err != ErrExhausted {
				t.Fatalf("err = %v", err)
			}
			// All non-reserved etags allocated: 16384 − 2.
			if tb.Len() != int(can.MaxEtag)-1 {
				t.Fatalf("Len at exhaustion = %d", tb.Len())
			}
			return
		}
	}
}

func TestTableClone(t *testing.T) {
	tb := NewTable()
	tb.Bind(1)
	c := tb.Clone()
	c.Bind(2)
	if tb.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone not independent")
	}
	e1, _ := tb.Lookup(1)
	e1c, _ := c.Lookup(1)
	if e1 != e1c {
		t.Fatal("clone lost bindings")
	}
}

func TestWire56Roundtrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= uint64(MaxSubject)
		var buf [7]byte
		put56(buf[:], v)
		return get56(buf[:]) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// protoRig wires an agent on node 0 and n clients on fresh controllers,
// routing config-channel frames to the right handlers.
func protoRig(n int, seed uint64) (*sim.Kernel, *Agent, []*Client) {
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	actrl := bus.Attach(AgentTxNode)
	agent := NewAgent(k, actrl)
	actrl.OnReceive = func(f can.Frame, at sim.Time) {
		if f.ID.Etag() == ConfigEtag {
			agent.HandleFrame(f, at)
		}
	}
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		ctrl := bus.Attach(tempNodeLo + can.TxNode(i)) // provisional
		cl := NewClient(k, ctrl)
		ctrl.OnReceive = func(f can.Frame, at sim.Time) {
			if f.ID.Etag() == ConfigEtag {
				cl.HandleFrame(f, at)
			}
		}
		clients[i] = cl
	}
	return k, agent, clients
}

func TestBindProtocol(t *testing.T) {
	k, _, clients := protoRig(2, 1)
	var got []can.Etag
	clients[0].Bind(500, func(e can.Etag, err error) {
		if err != nil {
			t.Errorf("bind: %v", err)
		}
		got = append(got, e)
	})
	clients[1].Bind(500, func(e can.Etag, err error) {
		if err != nil {
			t.Errorf("bind: %v", err)
		}
		got = append(got, e)
	})
	k.Run(1 * sim.Second)
	if len(got) != 2 {
		t.Fatalf("replies = %d", len(got))
	}
	if got[0] != got[1] {
		t.Fatalf("same subject bound to different etags: %v", got)
	}
}

func TestBindDifferentSubjects(t *testing.T) {
	k, _, clients := protoRig(1, 1)
	var e1, e2 can.Etag
	clients[0].Bind(500, func(e can.Etag, err error) { e1 = e })
	clients[0].Bind(600, func(e can.Etag, err error) { e2 = e })
	k.Run(1 * sim.Second)
	if e1 == 0 || e2 == 0 || e1 == e2 {
		t.Fatalf("etags = %d, %d", e1, e2)
	}
}

func TestBindInvalidSubject(t *testing.T) {
	k, _, clients := protoRig(1, 1)
	var gotErr error
	clients[0].Bind(0, func(_ can.Etag, err error) { gotErr = err })
	k.Run(100 * sim.Millisecond)
	if gotErr == nil {
		t.Fatal("invalid subject bound")
	}
}

func TestBindTimeoutWithoutAgent(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	ctrl := bus.Attach(5)
	cl := NewClient(k, ctrl)
	cl.Retry = RetryPolicy{Base: 10 * sim.Millisecond, Attempts: 3}
	var gotErr error
	done := false
	cl.Bind(42, func(_ can.Etag, err error) { gotErr = err; done = true })
	k.Run(1 * sim.Second)
	if !done || gotErr != ErrTimeout {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
}

func TestJoinProtocol(t *testing.T) {
	k, agent, clients := protoRig(3, 2)
	nodes := make([]can.TxNode, 3)
	for i, cl := range clients {
		i, cl := i, cl
		cl.Join(uint64(0x1000+i), func(n can.TxNode, err error) {
			if err != nil {
				t.Errorf("join %d: %v", i, err)
			}
			nodes[i] = n
		})
	}
	k.Run(2 * sim.Second)
	seen := make(map[can.TxNode]bool)
	for i, n := range nodes {
		if n == 0 {
			t.Fatalf("client %d not assigned", i)
		}
		if seen[n] {
			t.Fatalf("duplicate TxNode %d", n)
		}
		seen[n] = true
		if clients[i].Ctrl.Node() != n {
			t.Fatalf("controller %d not reconfigured", i)
		}
	}
	if agent.Nodes() != 3 {
		t.Fatalf("agent.Nodes = %d", agent.Nodes())
	}
}

func TestJoinIdempotentForUID(t *testing.T) {
	k, _, clients := protoRig(1, 3)
	var n1 can.TxNode
	clients[0].Join(0xabc, func(n can.TxNode, err error) { n1 = n })
	k.Run(1 * sim.Second)
	var n2 can.TxNode
	clients[0].Join(0xabc, func(n can.TxNode, err error) { n2 = n })
	k.Run(2 * sim.Second)
	if n1 == 0 || n1 != n2 {
		t.Fatalf("rejoin changed node: %d -> %d", n1, n2)
	}
}

func TestJoinCollisionResolution(t *testing.T) {
	// Many clients joining at the same instant: temporary-ID collisions
	// are possible and must resolve via single-shot failure + backoff.
	// Run with several seeds to exercise the collision path.
	for seed := uint64(1); seed <= 5; seed++ {
		k, _, clients := protoRig(8, seed)
		assigned := 0
		for i, cl := range clients {
			cl.Join(uint64(0x9000+i), func(n can.TxNode, err error) {
				if err == nil {
					assigned++
				}
			})
		}
		k.Run(5 * sim.Second)
		if assigned != 8 {
			t.Fatalf("seed %d: only %d/8 clients joined", seed, assigned)
		}
	}
}

func TestJoinInvalidUID(t *testing.T) {
	k, _, clients := protoRig(1, 1)
	var gotErr error
	clients[0].Join(0, func(_ can.TxNode, err error) { gotErr = err })
	k.Run(10 * sim.Millisecond)
	if gotErr == nil {
		t.Fatal("uid 0 accepted")
	}
}
