package binding

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// standbyRig wires an agent (heartbeating), a passive standby on its own
// controller, and n clients onto one bus.
type standbyRig struct {
	k       *sim.Kernel
	bus     *can.Bus
	agent   *Agent
	sa      *StandbyAgent
	clients []*Client
}

func newStandbyRig(n int, seed uint64, hb HeartbeatConfig) *standbyRig {
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)

	actrl := bus.Attach(AgentTxNode)
	agent := NewAgent(k, actrl)
	actrl.OnReceive = func(f can.Frame, at sim.Time) {
		if f.ID.Etag() == ConfigEtag {
			agent.HandleFrame(f, at)
		}
	}

	sctrl := bus.Attach(AgentTxNode + 1)
	replica := NewAgent(k, sctrl)
	sa := NewStandbyAgent(k, replica, hb)
	sctrl.OnReceive = func(f can.Frame, at sim.Time) {
		if f.ID.Etag() == ConfigEtag {
			sa.HandleFrame(f, at)
		}
	}

	r := &standbyRig{k: k, bus: bus, agent: agent, sa: sa}
	for i := 0; i < n; i++ {
		ctrl := bus.Attach(tempNodeLo + can.TxNode(i))
		cl := NewClient(k, ctrl)
		ctrl.OnReceive = func(f can.Frame, at sim.Time) {
			if f.ID.Etag() == ConfigEtag {
				cl.HandleFrame(f, at)
			}
		}
		r.clients = append(r.clients, cl)
	}
	agent.StartHeartbeat(hb)
	sa.Start()
	return r
}

var testHB = HeartbeatConfig{Period: 5 * sim.Millisecond, MissLimit: 2}

// TestStandbyReplicatesBindsBySnooping: bindings created through the live
// agent appear in the passive standby's replica by reply snooping alone.
func TestStandbyReplicatesBindsBySnooping(t *testing.T) {
	r := newStandbyRig(2, 1, testHB)
	var e500, e600 can.Etag
	r.clients[0].Bind(500, func(e can.Etag, err error) { e500 = e })
	r.clients[1].Bind(600, func(e can.Etag, err error) { e600 = e })
	r.k.Run(50 * sim.Millisecond)
	if e500 == 0 || e600 == 0 {
		t.Fatalf("binds did not complete: %d %d", e500, e600)
	}
	if r.sa.Active() {
		t.Fatal("standby took over while the agent was alive")
	}
	tab := r.sa.Agent().Table
	if got, ok := tab.Lookup(500); !ok || got != e500 {
		t.Fatalf("replica Lookup(500) = %d,%v, want %d", got, ok, e500)
	}
	if got, ok := tab.Lookup(600); !ok || got != e600 {
		t.Fatalf("replica Lookup(600) = %d,%v, want %d", got, ok, e600)
	}
	if tab.NextEtag() != r.agent.Table.NextEtag() {
		t.Fatalf("allocation pointers diverge: %d vs %d", tab.NextEtag(), r.agent.Table.NextEtag())
	}
}

// TestStandbyConvergesViaCheckpoints: state created before the standby
// heard any traffic (an off-line table plus preassignments) reaches the
// replica through the cycling checkpoint stream.
func TestStandbyConvergesViaCheckpoints(t *testing.T) {
	r := newStandbyRig(0, 2, testHB)
	// Seed agent state the standby never saw on the wire.
	for s := Subject(900); s < 905; s++ {
		if _, err := r.agent.Table.Bind(s); err != nil {
			t.Fatal(err)
		}
	}
	r.agent.Preassign(0xAA01, 9)
	r.agent.Preassign(0xAA02, 10)
	// One checkpoint pair per beat: 5 bindings + 2 uids need ≥ 7 beats.
	r.k.Run(15 * testHB.Period)
	tab := r.sa.Agent().Table
	for s := Subject(900); s < 905; s++ {
		want, _ := r.agent.Table.Lookup(s)
		if got, ok := tab.Lookup(s); !ok || got != want {
			t.Fatalf("replica Lookup(%d) = %d,%v, want %d", s, got, ok, want)
		}
	}
}

// TestStandbyTakeoverWithinWindow: a silenced agent triggers takeover no
// later than Period·(MissLimit+1) plus one tick, and the promoted replica
// serves binds consistently with the old agent's allocations.
func TestStandbyTakeoverWithinWindow(t *testing.T) {
	r := newStandbyRig(1, 3, testHB)
	var e500 can.Etag
	r.clients[0].Bind(500, func(e can.Etag, err error) { e500 = e })
	r.k.Run(30 * sim.Millisecond)
	if e500 == 0 {
		t.Fatal("warm-up bind did not complete")
	}

	var tookOver sim.Time
	r.sa.OnTakeover = func(at sim.Time) { tookOver = at }
	killedAt := r.k.Now()
	r.agent.Ctrl.Detach()
	window := testHB.Period * sim.Duration(testHB.MissLimit+2)
	r.k.Run(killedAt + 10*window)
	if !r.sa.Active() {
		t.Fatal("standby never took over")
	}
	if tookOver == 0 || tookOver-killedAt > window {
		t.Fatalf("takeover at %v, %v after kill, want ≤ %v", tookOver, tookOver-killedAt, window)
	}

	// The promoted replica serves the old binding unchanged and allocates
	// fresh etags past the replicated pointer.
	var again, fresh can.Etag
	r.clients[0].Bind(500, func(e can.Etag, err error) { again = e })
	r.clients[0].Bind(700, func(e can.Etag, err error) { fresh = e })
	r.k.Run(r.k.Now() + 100*sim.Millisecond)
	if again != e500 {
		t.Fatalf("rebind after takeover: etag %d, want %d", again, e500)
	}
	if fresh == 0 || fresh == e500 {
		t.Fatalf("fresh bind after takeover: etag %d", fresh)
	}
}

// TestStandbyServesJoinAfterTakeover: uid→node assignments replicated by
// snooping survive the takeover, so a station re-joining against the new
// agent receives its original TxNode.
func TestStandbyServesJoinAfterTakeover(t *testing.T) {
	r := newStandbyRig(2, 4, testHB)
	var first can.TxNode
	r.clients[0].Join(0xBEEF01, func(n can.TxNode, err error) {
		if err != nil {
			t.Errorf("join: %v", err)
		}
		first = n
	})
	r.k.Run(50 * sim.Millisecond)
	if first == 0 {
		t.Fatal("warm-up join did not complete")
	}

	r.agent.Ctrl.Detach()
	r.k.Run(r.k.Now() + 10*testHB.Period)
	if !r.sa.Active() {
		t.Fatal("standby never took over")
	}
	var second can.TxNode
	r.clients[1].Join(0xBEEF01, func(n can.TxNode, err error) {
		if err != nil {
			t.Errorf("re-join: %v", err)
		}
		second = n
	})
	r.k.Run(r.k.Now() + 100*sim.Millisecond)
	if second != first {
		t.Fatalf("re-join against standby assigned node %d, want %d", second, first)
	}
}

// TestStandbyHoldsWhileOwnStationDown: a detached standby must not promote
// itself — it can neither observe heartbeats nor serve anyone.
func TestStandbyHoldsWhileOwnStationDown(t *testing.T) {
	r := newStandbyRig(0, 5, testHB)
	r.k.Run(20 * sim.Millisecond)
	r.sa.Agent().Ctrl.Detach() // standby station crashes
	r.agent.Ctrl.Detach()      // and so does the agent
	r.k.Run(r.k.Now() + 20*testHB.Period)
	if r.sa.Active() {
		t.Fatal("detached standby promoted itself")
	}
	// Back on the bus, with the agent still dead, it promotes normally.
	r.sa.Agent().Ctrl.Reattach()
	r.k.Run(r.k.Now() + 10*testHB.Period)
	if !r.sa.Active() {
		t.Fatal("reattached standby never took over from the dead agent")
	}
}
