// Package value implements time-value functions in the sense of Jensen's
// Alpha (the paper's ref [11]): the worth of completing an event's
// transmission as a function of *when* it completes relative to its
// deadline. The paper uses them to derive the expiration attribute of
// soft real-time events — "the expiration time is an application specific
// parameter, which may be defined according to some value function"
// (§2.2) — and to reason about best-effort service after a missed
// deadline.
package value

import (
	"math"

	"canec/internal/sim"
)

// Function maps lateness (completion time − deadline; negative = early)
// to the value of the completion, normalised so that completing at or
// before the deadline is worth 1.
type Function interface {
	// At returns the value of completing with the given lateness.
	At(lateness sim.Duration) float64
}

// Step is the hard-deadline value function: full value until the
// deadline, zero after. Events with a Step function gain nothing from
// best-effort late transmission; their expiration equals their deadline.
type Step struct{}

// At implements Function.
func (Step) At(lateness sim.Duration) float64 {
	if lateness <= 0 {
		return 1
	}
	return 0
}

// Linear decays linearly from 1 at the deadline to 0 at deadline+Grace:
// a late sensor reading is still somewhat useful while the plant state it
// describes remains current.
type Linear struct {
	// Grace is the interval over which the value decays to zero.
	Grace sim.Duration
}

// At implements Function.
func (f Linear) At(lateness sim.Duration) float64 {
	if lateness <= 0 {
		return 1
	}
	if f.Grace <= 0 || lateness >= f.Grace {
		return 0
	}
	return 1 - float64(lateness)/float64(f.Grace)
}

// Exponential halves the value every HalfLife after the deadline: value
// never reaches exactly zero, modelling diagnostics that keep residual
// forensic worth.
type Exponential struct {
	HalfLife sim.Duration
}

// At implements Function.
func (f Exponential) At(lateness sim.Duration) float64 {
	if lateness <= 0 {
		return 1
	}
	if f.HalfLife <= 0 {
		return 0
	}
	return math.Exp2(-float64(lateness) / float64(f.HalfLife))
}

// Plateau keeps a constant reduced value After the deadline for Grace,
// then drops to zero: "late is acceptable but clearly worse" semantics.
type Plateau struct {
	After float64 // value in (0,1] granted while late within Grace
	Grace sim.Duration
}

// At implements Function.
func (f Plateau) At(lateness sim.Duration) float64 {
	if lateness <= 0 {
		return 1
	}
	if lateness >= f.Grace {
		return 0
	}
	return f.After
}

// ExpirationFor derives the expiration attribute of an event from its
// value function: the earliest lateness at which the value falls below
// threshold. This is exactly how the paper suggests applications define
// the expiration parameter (§2.2.2): once the residual value is below
// the threshold, transmitting the event wastes bandwidth and it should
// be removed from the send queue. A zero return means the value never
// falls below the threshold within horizon (no expiration).
func ExpirationFor(f Function, deadline sim.Time, threshold float64, horizon sim.Duration) sim.Time {
	if f.At(0) < threshold || f.At(sim.Nanosecond) < threshold {
		// Hard-deadline shape: no residual value after the deadline.
		return deadline
	}
	// Binary search for the crossing on (0, horizon]. Value functions are
	// non-increasing in lateness by construction.
	lo, hi := sim.Duration(0), horizon
	if f.At(hi) >= threshold {
		return 0 // never expires within the horizon
	}
	for hi-lo > sim.Microsecond {
		mid := lo + (hi-lo)/2
		if f.At(mid) >= threshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return deadline + hi
}

// Accrued sums the value obtained by a set of completions: the metric
// value-based scheduling maximises. Lateness entries for dropped events
// should be omitted (they contribute 0 by definition).
func Accrued(f Function, lateness []sim.Duration) float64 {
	var sum float64
	for _, l := range lateness {
		sum += f.At(l)
	}
	return sum
}
