package value

import (
	"math"
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

func TestStep(t *testing.T) {
	f := Step{}
	if f.At(-sim.Second) != 1 || f.At(0) != 1 {
		t.Fatal("on-time value must be 1")
	}
	if f.At(1) != 0 {
		t.Fatal("late value must be 0")
	}
}

func TestLinear(t *testing.T) {
	f := Linear{Grace: 10 * sim.Millisecond}
	if f.At(0) != 1 {
		t.Fatal("at deadline")
	}
	if got := f.At(5 * sim.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mid-grace value = %v", got)
	}
	if f.At(10*sim.Millisecond) != 0 || f.At(sim.Second) != 0 {
		t.Fatal("post-grace value must be 0")
	}
	if (Linear{}).At(1) != 0 {
		t.Fatal("zero grace must be a step")
	}
}

func TestExponential(t *testing.T) {
	f := Exponential{HalfLife: 4 * sim.Millisecond}
	if f.At(0) != 1 {
		t.Fatal("at deadline")
	}
	if got := f.At(4 * sim.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half-life value = %v", got)
	}
	if got := f.At(8 * sim.Millisecond); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("two half-lives value = %v", got)
	}
	if (Exponential{}).At(1) != 0 {
		t.Fatal("zero half-life must be a step")
	}
}

func TestPlateau(t *testing.T) {
	f := Plateau{After: 0.3, Grace: 5 * sim.Millisecond}
	if f.At(0) != 1 || f.At(sim.Millisecond) != 0.3 || f.At(5*sim.Millisecond) != 0 {
		t.Fatal("plateau shape wrong")
	}
}

func TestAllNonIncreasing(t *testing.T) {
	fns := []Function{
		Step{},
		Linear{Grace: 7 * sim.Millisecond},
		Exponential{HalfLife: 3 * sim.Millisecond},
		Plateau{After: 0.5, Grace: 9 * sim.Millisecond},
	}
	check := func(aRaw, bRaw uint32) bool {
		a, b := sim.Duration(aRaw), sim.Duration(bRaw)
		if a > b {
			a, b = b, a
		}
		for _, f := range fns {
			if f.At(a) < f.At(b) {
				return false
			}
			if v := f.At(a); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpirationFor(t *testing.T) {
	deadline := sim.Time(100 * sim.Millisecond)
	horizon := sim.Duration(sim.Second)

	// Hard deadline: expiration == deadline.
	if got := ExpirationFor(Step{}, deadline, 0.5, horizon); got != deadline {
		t.Fatalf("step expiration = %v", got)
	}
	// Linear with 10 ms grace, threshold 0.25 → expiration ≈ deadline+7.5ms.
	got := ExpirationFor(Linear{Grace: 10 * sim.Millisecond}, deadline, 0.25, horizon)
	want := deadline + 7500*sim.Microsecond
	if got < want-2*sim.Microsecond || got > want+2*sim.Microsecond {
		t.Fatalf("linear expiration = %v, want ≈%v", got, want)
	}
	// Exponential with huge half-life never crosses within the horizon.
	if got := ExpirationFor(Exponential{HalfLife: sim.Second}, deadline, 0.1, 100*sim.Millisecond); got != 0 {
		t.Fatalf("non-expiring function returned %v", got)
	}
}

func TestExpirationForConsistent(t *testing.T) {
	// Property: the value just before the derived expiration is ≥ the
	// threshold; just after, it is below.
	f := func(graceMs uint16, thresholdRaw uint8) bool {
		grace := sim.Duration(graceMs%100+1) * sim.Millisecond
		threshold := 0.05 + 0.9*float64(thresholdRaw)/255
		fn := Linear{Grace: grace}
		deadline := sim.Time(50 * sim.Millisecond)
		exp := ExpirationFor(fn, deadline, threshold, sim.Second)
		if exp == 0 {
			return false // linear always expires
		}
		late := exp - deadline
		return fn.At(late-2*sim.Microsecond) >= threshold &&
			fn.At(late+2*sim.Microsecond) < threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAccrued(t *testing.T) {
	f := Linear{Grace: 10 * sim.Millisecond}
	lat := []sim.Duration{-sim.Millisecond, 0, 5 * sim.Millisecond, sim.Second}
	got := Accrued(f, lat)
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("Accrued = %v, want 2.5", got)
	}
	if Accrued(f, nil) != 0 {
		t.Fatal("empty accrual")
	}
}
