package chaos

import (
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
)

const (
	busoffVictim   = 1
	busoffAttacker = 4
	busoffRounds   = 60
)

// busoffRig is the five-station system under a bus-off adversary: station
// 0 subscribes to everything, station 1 (the victim) publishes two HRT
// subjects, stations 2 and 3 each publish one, station 4 is the attacker.
// Fault confinement is on and the lifecycle supervisor owns bus-off
// recovery — the full defense stack of DESIGN §12.
type busoffRig struct {
	sys       *core.System
	lc        *core.Lifecycle
	cal       *calendar.Calendar
	delivered map[binding.Subject]int
}

func newBusoffRig(t *testing.T, seed uint64) *busoffRig {
	t.Helper()
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: 0x3001, Publisher: busoffVictim, Payload: 8, Periodic: true},
		calendar.Slot{Subject: 0x3002, Publisher: busoffVictim, Payload: 8, Periodic: true},
		calendar.Slot{Subject: 0x3003, Publisher: 2, Payload: 8, Periodic: true},
		calendar.Slot{Subject: 0x3004, Publisher: 3, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:         5,
		Seed:          seed,
		Calendar:      cal,
		Epoch:         1 * sim.Millisecond,
		ConfineFaults: true,
		Observe:       obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &busoffRig{
		sys: sys, cal: cal,
		lc:        core.NewLifecycle(sys),
		delivered: make(map[binding.Subject]int),
	}
	for _, s := range cal.Slots {
		subj := binding.Subject(s.Subject)
		pub, err := sys.Node(int(s.Publisher)).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < busoffRounds; i++ {
			i := i
			sys.K.At(sys.Cfg.Epoch+sim.Time(i)*cal.Round-100*sim.Microsecond, func() {
				_ = pub.Publish(core.Event{Subject: subj, Payload: []byte{byte(i)}})
			})
		}
		sub, err := sys.Node(0).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) { r.delivered[subj]++ }, nil)
	}
	return r
}

// TestBusOffAttackRecoveryAndHRTSurvival is the acceptance e2e for the
// bus-off adversary campaign: a rate-1.0 slot-timed attack on station 1
// with the guardian armed must (a) drive the victim bus-off — the weapon
// works; (b) see the victim recover under the supervisor within the
// declared bound; (c) end with the guardian isolating the attacker; and
// (d) never cost a healthy station an HRT slot. All four are enforced by
// the campaign's invariant checkers, then cross-checked against the raw
// trace and final controller states here.
func TestBusOffAttackRecoveryAndHRTSurvival(t *testing.T) {
	r := newBusoffRig(t, 1)
	script := Script{
		Guardian:          true,
		GuardianSlotLimit: 20,
		Events: []Event{{
			Kind: "busoff_attack", AtMS: 51, UntilMS: 251,
			Node: busoffAttacker, Victim: busoffVictim, Rate: 1,
		}},
	}
	c, err := NewCampaign(r.sys, r.lc, script)
	if err != nil {
		t.Fatal(err)
	}
	r.lc.EnableBusOffRecovery(core.DefaultBusOffPolicy())
	c.Install()
	r.sys.Run(r.sys.Cfg.Epoch + busoffRounds*r.cal.Round)
	rep := c.Finish(0)
	for _, e := range c.Errors {
		t.Errorf("campaign event failed: %v", e)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %v", v)
	}

	// (a) The weapon worked: the victim's controller entered bus-off.
	if rep.BusOffEvents == 0 {
		t.Fatal("victim never reached bus-off under a rate-1.0 attack")
	}
	// (b) The supervisor brought it back: by the horizon (350 ms past the
	// attack) the victim is error-active and publishing again.
	if rep.BusOffRecovered == 0 {
		t.Fatal("supervisor recorded no bus-off recoveries")
	}
	if st := r.sys.Node(busoffVictim).Ctrl.State(); st != can.ErrorActive {
		t.Fatalf("victim final state = %v, want error-active", st)
	}
	// (c) The guardian ended the attack: every adversary pulse was muted
	// pre-arbitration and the station itself was isolated mid-window.
	if rep.AttackMuted == 0 || rep.AttackSent != 0 {
		t.Fatalf("attacker muted=%d sent=%d, want >0/0", rep.AttackMuted, rep.AttackSent)
	}
	isolated := false
	for _, rec := range r.sys.Obs.Records() {
		if rec.Stage == obs.StageGuardIsolated && rec.Node == busoffAttacker {
			isolated = true
			break
		}
	}
	if !isolated {
		t.Fatal("no guard_isolated trace for the attacker")
	}
	// (d) Healthy stations rode through: their subjects delivered every
	// round, attack or no attack.
	for _, subj := range []binding.Subject{0x3003, 0x3004} {
		if got := r.delivered[subj]; got < busoffRounds-1 {
			t.Fatalf("healthy subject %#x delivered %d of %d rounds", uint64(subj), got, busoffRounds)
		}
	}
	// The victim's own subjects lost rounds to the outage but came back
	// after the attack: more than the pre-attack 5 rounds, fewer than all.
	for _, subj := range []binding.Subject{0x3001, 0x3002} {
		got := r.delivered[subj]
		if got <= 5 || got >= busoffRounds {
			t.Fatalf("victim subject %#x delivered %d rounds, want within (5, %d)", uint64(subj), got, busoffRounds)
		}
	}
}

// TestBusOffAttackScriptValidate pins the validation of the adversary
// event kinds.
func TestBusOffAttackScriptValidate(t *testing.T) {
	bad := []Script{
		{Events: []Event{{Kind: "busoff_attack", AtMS: 1, UntilMS: 2, Node: 4, Victim: 1}}},          // no rate
		{Events: []Event{{Kind: "busoff_attack", AtMS: 1, UntilMS: 2, Node: 4, Victim: 1, Rate: 2}}}, // rate > 1
		{Events: []Event{{Kind: "busoff_attack", AtMS: 2, UntilMS: 2, Node: 4, Victim: 1, Rate: 1}}}, // empty window
		{Events: []Event{{Kind: "busoff_attack", AtMS: 1, UntilMS: 2, Node: 4, Victim: 4, Rate: 1}}}, // self-attack
		{Events: []Event{{Kind: "busoff_attack", AtMS: 1, UntilMS: 2, Node: 4, Victim: 9, Rate: 1}}}, // victim range
		{Events: []Event{{Kind: "bit_error", AtMS: 1, UntilMS: 2}}},                                  // no rate
	}
	for i, s := range bad {
		if err := s.Validate(5); err == nil {
			t.Errorf("script %d validated, want error", i)
		}
	}
	good := Script{Events: []Event{
		{Kind: "bit_error", AtMS: 1, UntilMS: 2, Node: 2, Rate: 0.5},
		{Kind: "busoff_attack", AtMS: 1, UntilMS: 2, Node: 4, Victim: 1, Rate: 1},
	}}
	if err := good.Validate(5); err != nil {
		t.Errorf("good script rejected: %v", err)
	}
}
