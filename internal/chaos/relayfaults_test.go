package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canec/internal/binding"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/relay"
	"canec/internal/sim"
)

const chaosSubj binding.Subject = 0x7A

func chaosRelayCfg(segment string, trace func(relay.Event)) relay.Config {
	return relay.Config{
		Segment:          segment,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		Retry: binding.RetryPolicy{
			Base: sim.Duration(5 * time.Millisecond), Cap: sim.Duration(20 * time.Millisecond),
			Attempts: 1000, JitterFrac: 0.1,
		},
		Seed:  42,
		Trace: trace,
	}
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLinkChaosLivenessInvariants runs a full link-fault campaign against
// a real relay pair — added latency, 50% data-plane loss, two link flaps —
// then lifts the faults and asserts the liveness invariants: the uplink
// re-dialed back to connected, traffic flows again, and the relay itself
// never dropped an HRT frame (wire loss is the proxy's doing, not the
// relay's).
func TestLinkChaosLivenessInvariants(t *testing.T) {
	var delivered atomic.Uint64
	srv, err := relay.Serve("127.0.0.1:0", chaosRelayCfg("hub", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnFrame(func(gateway.RemoteEvent) { delivered.Add(1) })
	if err := srv.Subscribe(chaosSubj, nil, nil); err != nil {
		t.Fatal(err)
	}

	proxy, err := NewLinkProxy(srv.Addr().String(), LinkFaults{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var evMu sync.Mutex
	var events []relay.Event
	up := relay.Dial(proxy.Addr(), chaosRelayCfg("edge", func(e relay.Event) {
		evMu.Lock()
		events = append(events, e)
		evMu.Unlock()
	}))
	defer up.Close()

	send := func() {
		up.Send(gateway.RemoteEvent{
			Class: core.HRT, Subject: chaosSubj, Payload: []byte{0xEC},
			Origin: 1, OriginSeg: "edge", TraceID: 7,
		}, time.Time{})
	}

	// Phase 0: healthy link, traffic flows.
	waitForCond(t, "link up", up.Connected)
	waitForCond(t, "baseline delivery", func() bool {
		send()
		time.Sleep(5 * time.Millisecond)
		return delivered.Load() > 0
	})

	// Phase 1: latency + 50% data-plane loss.
	proxy.SetFaults(LinkFaults{ExtraLatency: 2 * time.Millisecond, FrameLossRate: 0.5, Seed: 99})
	for i := 0; i < 40; i++ {
		send()
		time.Sleep(time.Millisecond)
	}
	if proxy.DroppedFrames.Load() == 0 {
		t.Fatal("loss injection dropped nothing over 40 sends at 50%")
	}

	// Phase 2: flap the link twice; the uplink must re-dial through.
	for i := 0; i < 2; i++ {
		proxy.Flap()
		time.Sleep(10 * time.Millisecond)
	}
	waitForCond(t, "re-dial after flaps", up.Connected)

	// Phase 3: lift the faults; traffic must flow again.
	proxy.SetFaults(LinkFaults{})
	before := delivered.Load()
	waitForCond(t, "post-fault delivery", func() bool {
		send()
		time.Sleep(5 * time.Millisecond)
		return delivered.Load() > before
	})

	evMu.Lock()
	snapshot := append([]relay.Event(nil), events...)
	evMu.Unlock()
	v := CheckRelayLiveness(RelayCheckContext{
		Events:               snapshot,
		Counters:             up.Counters(),
		ConnectedAtEnd:       up.Connected(),
		DeliveredAfterFaults: delivered.Load() - before,
		RequireDelivery:      true,
	})
	if len(v) != 0 {
		t.Fatalf("liveness violations: %v", v)
	}
	// The campaign must actually have exercised the failure path.
	downs := 0
	for _, e := range snapshot {
		if e.Kind == "down" {
			downs++
		}
	}
	if downs == 0 {
		t.Fatal("flaps produced no link-down events")
	}
}

// TestCheckRelayLivenessFlagsBreaches feeds the checker synthetic breach
// traces and expects each invariant to fire.
func TestCheckRelayLivenessFlagsBreaches(t *testing.T) {
	hrt := &gateway.RemoteEvent{Class: core.HRT}
	v := CheckRelayLiveness(RelayCheckContext{
		Events: []relay.Event{
			{Kind: "drop", Peer: "hub", Detail: "backpressure", Frame: hrt},
			{Kind: "down", Peer: "hub", Detail: "heartbeat timeout"},
		},
		Counters:        &relay.Counters{}, // zeroed: the traced drop is unaccounted
		ConnectedAtEnd:  false,
		RequireDelivery: true,
	})
	got := map[string]bool{}
	for _, x := range v {
		got[x.Check] = true
	}
	for _, want := range []string{"hrt-never-dropped", "link-recovers", "relay-liveness", "drop-accounting"} {
		if !got[want] {
			t.Errorf("checker missed %s (violations: %v)", want, v)
		}
	}
	// A clean SRT shed on a recovered link is not a violation.
	srt := &gateway.RemoteEvent{Class: core.SRT}
	cnt := &relay.Counters{}
	v = CheckRelayLiveness(RelayCheckContext{
		Events:         []relay.Event{{Kind: "down"}, {Kind: "up"}, {Kind: "drop", Frame: srt, Detail: "expired"}},
		Counters:       cnt,
		ConnectedAtEnd: true,
	})
	for _, x := range v {
		if x.Check != "drop-accounting" { // counters are empty in this synthetic trace
			t.Errorf("unexpected violation: %v", x)
		}
	}
}
