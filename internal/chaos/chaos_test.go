package chaos

import (
	"reflect"
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
)

const (
	subjSteer binding.Subject = 0x2001
	subjBrake binding.Subject = 0x2002
)

// channels maps each HRT subject to its publishing station, in a fixed
// order so announcements are deterministic.
var channels = []struct {
	subj  binding.Subject
	owner int
}{
	{subjSteer, 2},
	{subjBrake, 3},
}

// rig is the four-station system under chaos: station 0 hosts the binding
// agent and both subscribers, station 1 is the potential babbling idiot,
// stations 2 and 3 each publish one periodic HRT subject.
type rig struct {
	t         *testing.T
	sys       *core.System
	lc        *core.Lifecycle
	cal       *calendar.Calendar
	pubs      map[binding.Subject]*core.HRTEC
	delivered map[binding.Subject]int
	late      int
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjSteer), Publisher: 2, Payload: 8, Periodic: true},
		calendar.Slot{Subject: uint64(subjBrake), Publisher: 3, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:    4,
		Seed:     seed,
		Calendar: cal,
		Epoch:    1 * sim.Millisecond,
		Observe:  obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		t: t, sys: sys, cal: cal,
		lc:        core.NewLifecycle(sys),
		pubs:      make(map[binding.Subject]*core.HRTEC),
		delivered: make(map[binding.Subject]int),
	}
	for _, c := range channels {
		r.announce(c.subj, sys.Node(c.owner).MW)
	}
	r.lc.OnRestart = func(n int, mw *core.Middleware) {
		for _, c := range channels {
			if c.owner == n {
				r.announce(c.subj, mw)
			}
		}
	}
	for _, c := range channels {
		subj := c.subj
		sub, err := sys.Node(0).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				r.delivered[subj]++
				if di.Late {
					r.late++
				}
			}, nil)
	}
	return r
}

func (r *rig) announce(subj binding.Subject, mw *core.Middleware) {
	c, err := mw.HRTEC(subj)
	if err != nil {
		r.t.Fatalf("HRTEC(%#x): %v", uint64(subj), err)
	}
	if err := c.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		r.t.Fatalf("Announce(%#x): %v", uint64(subj), err)
	}
	r.pubs[subj] = c
}

// drive schedules one publish per subject per round, skipping stations that
// are down (the real application on a crashed node is dead too).
func (r *rig) drive(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		i := i
		r.sys.K.At(r.sys.Cfg.Epoch+sim.Time(i)*r.cal.Round-100*sim.Microsecond, func() {
			for _, c := range channels {
				if !r.lc.Down(c.owner) {
					_ = r.pubs[c.subj].Publish(core.Event{Subject: c.subj, Payload: []byte{byte(i)}})
				}
			}
		})
	}
}

func (r *rig) missedSlots() int {
	n := 0
	for _, rec := range r.sys.Obs.Records() {
		if rec.Stage == obs.StageMissed {
			n++
		}
	}
	return n
}

// fullScript is the everything-at-once campaign: an error burst over the
// HRT slots of round 3, a crash/restart cycle of station 2 spanning rounds
// 6–10, an omission window over rounds 12–15, and a guarded babbling idiot
// over rounds 17–18.
func fullScript() Script {
	return Script{
		Guardian: true,
		Events: []Event{
			{Kind: "burst", AtMS: 31.1, UntilMS: 31.25},
			{Kind: "crash", AtMS: 52, Node: 2},
			{Kind: "restart", AtMS: 102, Node: 2},
			{Kind: "omission", AtMS: 121, UntilMS: 161, Rate: 0.3, VictimProb: 0.5},
			{Kind: "babble", AtMS: 171, UntilMS: 191, Node: 1},
		},
	}
}

const fullRounds = 25

func runFull(t *testing.T, seed uint64) (*rig, Report) {
	t.Helper()
	r := newRig(t, seed)
	c, err := NewCampaign(r.sys, r.lc, fullScript())
	if err != nil {
		t.Fatal(err)
	}
	r.drive(fullRounds)
	c.Install()
	r.sys.Run(r.sys.Cfg.Epoch + fullRounds*r.cal.Round)
	rep := c.Finish(0)
	for _, e := range c.Errors {
		t.Errorf("campaign event failed: %v", e)
	}
	return r, rep
}

// TestCampaignFullScript runs the combined crash/restart + burst + omission
// + babble campaign with the guardian armed and asserts every invariant
// checker passes on the trace.
func TestCampaignFullScript(t *testing.T) {
	r, rep := runFull(t, 1)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %v", v)
	}
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", rep.Crashes, rep.Restarts)
	}
	// The guardian muted the babbler before any babble frame hit the wire.
	if rep.GuardianMuted == 0 || rep.BabbleMuted == 0 || rep.BabbleSent != 0 {
		t.Fatalf("guardian muted=%d babble muted=%d sent=%d, want >0/>0/0",
			rep.GuardianMuted, rep.BabbleMuted, rep.BabbleSent)
	}
	// Station 3 never crashed: every round delivered. Station 2 lost the
	// outage rounds; the omission window may convert a couple of deliveries
	// into clean SlotMissed exceptions.
	if r.delivered[subjBrake] < fullRounds-2 {
		t.Fatalf("brake deliveries = %d, want ≥ %d", r.delivered[subjBrake], fullRounds-2)
	}
	if got := r.delivered[subjSteer]; got < 15 || got > 20 {
		t.Fatalf("steer deliveries = %d, want 15..20 (outage loses ~5 rounds)", got)
	}
	if r.late != 0 {
		t.Fatalf("%d late HRT deliveries with the guardian armed", r.late)
	}
	var down, up bool
	for _, rec := range r.sys.Obs.Records() {
		if rec.Node == 2 {
			switch rec.Stage {
			case obs.StageNodeDown:
				down = true
			case obs.StageNodeUp:
				up = true
			}
		}
	}
	if !down || !up {
		t.Fatalf("lifecycle trace incomplete: down=%v up=%v", down, up)
	}
}

// TestCampaignDeterministicPerSeed asserts bit-identical traces and reports
// for two independent runs of the same script and seed.
func TestCampaignDeterministicPerSeed(t *testing.T) {
	r1, rep1 := runFull(t, 5)
	r2, rep2 := runFull(t, 5)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("reports diverge:\n%+v\n%+v", rep1, rep2)
	}
	a, b := r1.sys.Obs.Records(), r2.sys.Obs.Records()
	if len(a) != len(b) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace record %d diverges:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestGuardianStopsBabblingIdiot is the paper's babbling-idiot argument as
// an executable experiment: without a bus guardian a single station
// transmitting at priority 0 outside the calendar breaks HRT deadlines;
// with the guardian armed the same campaign is harmless.
func TestGuardianStopsBabblingIdiot(t *testing.T) {
	babble := func(guardian bool) Script {
		return Script{
			Guardian: guardian,
			Events:   []Event{{Kind: "babble", AtMS: 151, UntilMS: 181, Node: 1}},
		}
	}
	run := func(guardian bool) (*rig, Report) {
		r := newRig(t, 3)
		c, err := NewCampaign(r.sys, r.lc, babble(guardian))
		if err != nil {
			t.Fatal(err)
		}
		r.drive(fullRounds)
		c.Install()
		r.sys.Run(r.sys.Cfg.Epoch + fullRounds*r.cal.Round)
		return r, c.Finish(0)
	}

	r, rep := run(false)
	if harm := r.late + r.missedSlots(); harm == 0 {
		t.Fatalf("unguarded babbler caused no HRT deadline violations (sent %d frames)", rep.BabbleSent)
	}
	if rep.BabbleSent == 0 {
		t.Fatal("unguarded babbler never reached the wire")
	}

	r, rep = run(true)
	if r.late != 0 || r.missedSlots() != 0 {
		t.Fatalf("guarded run still violated deadlines: late=%d missed=%d", r.late, r.missedSlots())
	}
	if rep.GuardianMuted == 0 || rep.BabbleSent != 0 {
		t.Fatalf("guardian muted=%d babble sent=%d, want >0/0", rep.GuardianMuted, rep.BabbleSent)
	}
	if r.delivered[subjSteer] != fullRounds || r.delivered[subjBrake] != fullRounds {
		t.Fatalf("guarded deliveries = %d/%d, want %d/%d",
			r.delivered[subjSteer], r.delivered[subjBrake], fullRounds, fullRounds)
	}
	for _, v := range rep.Violations {
		t.Errorf("guarded run violated invariant: %v", v)
	}
}

// TestChaosSmokeSeeds is the seed sweep wired into `make chaos-smoke`: the
// full campaign under several seeds, every checker green each time.
func TestChaosSmokeSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		_, rep := runFull(t, seed)
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %v", seed, v)
		}
		if rep.Crashes != 1 || rep.Restarts != 1 {
			t.Errorf("seed %d: crashes/restarts = %d/%d", seed, rep.Crashes, rep.Restarts)
		}
	}
}

// TestScriptValidate pins the script-level error paths.
func TestScriptValidate(t *testing.T) {
	bad := []Script{
		{Events: []Event{{Kind: "meteor", AtMS: 1}}},
		{Events: []Event{{Kind: "crash", AtMS: 1, Node: 0}}},
		{Events: []Event{{Kind: "crash", AtMS: 1, Node: 9}}},
		{Events: []Event{{Kind: "restart", AtMS: 1, Node: 2}}},
		{Events: []Event{{Kind: "babble", AtMS: 5, UntilMS: 5, Node: 1}}},
		{Events: []Event{{Kind: "omission", AtMS: 1, UntilMS: 2, Rate: 1.5, VictimProb: 0.5}}},
		{Events: []Event{{Kind: "crash", AtMS: -1, Node: 2}}},
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("script %d validated, want error", i)
		}
	}
	if err := fullScript().Validate(4); err != nil {
		t.Errorf("full script rejected: %v", err)
	}
}
