// Package chaos is the fault-campaign harness: deterministic, seed-driven
// scripts of whole-node and bus-level fault events (crash, restart, error
// burst, omission window, babbling idiot) executed against a core.System,
// plus invariant checkers that replay the observability trace and assert
// the paper's dependability claims end to end.
//
// Everything is driven from the simulation kernel, so a campaign is exactly
// reproducible per seed: same script + same seed ⇒ identical trace.
package chaos

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/sim"
)

// Event is one scripted fault. Times are virtual milliseconds from the
// start of the run, so scripts read naturally in JSON.
type Event struct {
	// Kind is one of crash, restart, burst, omission, babble, bit_error,
	// busoff_attack, or one of the role-targeted kinds agent_crash,
	// agent_restart, master_crash, master_restart. Role kinds ignore Node:
	// the target is resolved when the event fires (the station *then*
	// hosting the binding agent or acting as time master), so a script
	// composes correctly with earlier takeovers.
	Kind string `json:"kind"`
	// AtMS is when the event fires (crash/restart) or the window opens
	// (burst/omission/babble/bit_error/busoff_attack).
	AtMS float64 `json:"at_ms"`
	// UntilMS closes the window for burst/omission/babble/bit_error/
	// busoff_attack events.
	UntilMS float64 `json:"until_ms,omitempty"`
	// Node is the target station for crash/restart/babble, the victim for
	// bit_error, and the *attacking* station for busoff_attack.
	Node int `json:"node,omitempty"`
	// Rate is the per-attempt fault probability for omission windows and
	// the per-attempt corruption probability for bit_error/busoff_attack.
	Rate float64 `json:"rate,omitempty"`
	// VictimProb is the per-receiver miss probability for omission windows.
	VictimProb float64 `json:"victim_prob,omitempty"`
	// Victim is the station whose transmissions a busoff_attack corrupts.
	Victim int `json:"victim,omitempty"`
}

// Script is a reproducible fault campaign.
type Script struct {
	// Guardian arms the calendar-aware bus guardian for the run.
	Guardian bool `json:"guardian,omitempty"`
	// GuardianLimit escalates frame muting to node isolation after this
	// many violations by one station (0 = never isolate).
	GuardianLimit int `json:"guardian_limit,omitempty"`
	// GuardianSlotLimit escalates faster for slot-timed violations — a
	// station repeatedly firing into windows owned by *other* stations is
	// an attacker, not a drifting clock (0 = no fast path).
	GuardianSlotLimit int `json:"guardian_slot_limit,omitempty"`
	// AgentStandby, if set, arms a hot-standby binding agent on this
	// station before the run (required by the agent_crash kind).
	AgentStandby *int `json:"agent_standby,omitempty"`
	// AgentHeartbeatMS / AgentMissLimit parameterise the agent heartbeat;
	// zero selects binding.DefaultHeartbeatConfig.
	AgentHeartbeatMS float64 `json:"agent_heartbeat_ms,omitempty"`
	AgentMissLimit   int     `json:"agent_miss_limit,omitempty"`
	// SyncBackups ranks backup time masters, installed on the system's
	// syncer before the run (required by the master_crash kind unless the
	// system was already configured with backups).
	SyncBackups []int `json:"sync_backups,omitempty"`
	// FailoverRounds overrides the syncer's missed-round tolerance.
	FailoverRounds int `json:"failover_rounds,omitempty"`
	// Events in any order; Install sorts nothing — the kernel does.
	Events []Event `json:"events"`
}

// Validate checks the script's internal consistency against a station
// count.
func (s Script) Validate(nodes int) error {
	downs := make(map[int]int)
	agentDowns, masterDowns := 0, 0
	for i, e := range s.Events {
		switch e.Kind {
		case "crash":
			downs[e.Node]++
		case "restart":
			downs[e.Node]--
		case "agent_crash":
			if s.AgentStandby == nil {
				return fmt.Errorf("chaos: event %d crashes the binding agent but no agent_standby is armed", i)
			}
			agentDowns++
		case "agent_restart":
			agentDowns--
		case "master_crash":
			masterDowns++
		case "master_restart":
			masterDowns--
		case "burst", "omission", "babble", "bit_error", "busoff_attack":
			if e.UntilMS <= e.AtMS {
				return fmt.Errorf("chaos: event %d (%s) has empty window [%v, %v)", i, e.Kind, e.AtMS, e.UntilMS)
			}
			if e.Kind == "omission" && (e.Rate <= 0 || e.Rate > 1 || e.VictimProb <= 0 || e.VictimProb > 1) {
				return fmt.Errorf("chaos: event %d omission probabilities out of range", i)
			}
			if e.Kind == "bit_error" || e.Kind == "busoff_attack" {
				if e.Rate <= 0 || e.Rate > 1 {
					return fmt.Errorf("chaos: event %d (%s) corruption rate %v out of (0, 1]", i, e.Kind, e.Rate)
				}
			}
			if e.Kind == "busoff_attack" {
				if e.Victim < 0 || e.Victim >= nodes {
					return fmt.Errorf("chaos: event %d attacks victim station %d of %d", i, e.Victim, nodes)
				}
				if e.Victim == e.Node {
					return fmt.Errorf("chaos: event %d has station %d attacking itself", i, e.Node)
				}
			}
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %q", i, e.Kind)
		}
		if e.AtMS < 0 {
			return fmt.Errorf("chaos: event %d fires at negative time", i)
		}
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("chaos: event %d targets station %d of %d", i, e.Node, nodes)
		}
		if e.Kind == "crash" && e.Node == 0 && s.AgentStandby == nil {
			return fmt.Errorf("chaos: event %d crashes station 0 (binding agent)", i)
		}
	}
	if s.AgentStandby != nil {
		if b := *s.AgentStandby; b <= 0 || b >= nodes {
			return fmt.Errorf("chaos: agent_standby station %d of %d", b, nodes)
		}
	}
	for _, b := range s.SyncBackups {
		if b < 0 || b >= nodes {
			return fmt.Errorf("chaos: sync backup station %d of %d", b, nodes)
		}
	}
	if agentDowns < 0 {
		return fmt.Errorf("chaos: agent restarted more often than crashed")
	}
	if masterDowns < 0 {
		return fmt.Errorf("chaos: master restarted more often than crashed")
	}
	for n, d := range downs {
		if d < 0 {
			return fmt.Errorf("chaos: station %d restarted more often than crashed", n)
		}
	}
	return nil
}

// ms converts script milliseconds to kernel time.
func ms(v float64) sim.Time { return sim.Time(v * float64(sim.Millisecond)) }

// Campaign binds a script to a system and executes it.
type Campaign struct {
	Sys    *core.System
	LC     *core.Lifecycle
	Script Script
	// Guardian is the installed bus guardian (nil unless Script.Guardian).
	Guardian *calendar.Guardian
	// Babblers by station index, populated by Install.
	Babblers map[int]*Babbler
	// Attackers by attacking station index, populated by Install for
	// busoff_attack events.
	Attackers map[int]*Attacker
	// Errors collects failures of scheduled events (e.g. a restart of a
	// station that was never crashed); deterministic scripts should leave
	// it empty.
	Errors []error

	// Role-targeted crash bookkeeping: when the acting agent / master was
	// crashed (feeding the takeover-latency checkers) and which station it
	// was (so the matching restart event knows its target).
	agentDownAt    []sim.Time
	masterDownAt   []sim.Time
	lastAgentDown  int
	lastMasterDown int

	// attacks records the scripted busoff_attack windows for the checkers.
	attacks []AttackWindow
}

// NewCampaign prepares a campaign. The system must be observed with
// tracing enabled — the invariant checkers replay the trace. The caller
// keeps responsibility for creating channels and traffic (and for
// re-creating them via lc.OnRestart).
func NewCampaign(sys *core.System, lc *core.Lifecycle, script Script) (*Campaign, error) {
	if sys.Obs.Tracer() == nil {
		return nil, fmt.Errorf("chaos: campaign needs an observed system with tracing enabled")
	}
	if err := script.Validate(len(sys.Nodes)); err != nil {
		return nil, err
	}
	c := &Campaign{Sys: sys, LC: lc, Script: script, Babblers: make(map[int]*Babbler),
		Attackers: make(map[int]*Attacker), lastAgentDown: -1, lastMasterDown: -1}
	if script.AgentStandby != nil {
		err := lc.EnableStandby(*script.AgentStandby, binding.HeartbeatConfig{
			Period:    sim.Duration(ms(script.AgentHeartbeatMS)),
			MissLimit: script.AgentMissLimit,
		})
		if err != nil {
			return nil, err
		}
	}
	if len(script.SyncBackups) > 0 || script.FailoverRounds > 0 {
		if sys.Syncer == nil {
			return nil, fmt.Errorf("chaos: sync_backups/failover_rounds need clock synchronization enabled")
		}
		if len(script.SyncBackups) > 0 {
			sys.Syncer.SetBackups(script.SyncBackups)
		}
		if script.FailoverRounds > 0 {
			sys.Syncer.Cfg.FailoverRounds = script.FailoverRounds
		}
	}
	for _, e := range script.Events {
		if e.Kind == "master_crash" && (sys.Syncer == nil || len(sys.Syncer.Backups()) == 0) {
			return nil, fmt.Errorf("chaos: master_crash needs sync backups (sync_backups or SystemConfig.SyncBackups)")
		}
	}
	if script.Guardian {
		if sys.Cfg.Calendar == nil {
			return nil, fmt.Errorf("chaos: guardian needs a calendar")
		}
		c.Guardian = calendar.NewGuardian(sys.Cfg.Calendar, sys.Cfg.Epoch, script.GuardianLimit)
		c.Guardian.SlotTargetedLimit = script.GuardianSlotLimit
		// On a drifting-clock system the calendar grid lives in the
		// synchronized timebase, which is anchored to the sync master's
		// drifting clock, not to kernel time. Give the guardian the master's
		// clock (a hardware guardian keeps its own synchronized clock), and
		// widen the slot slack to the analytical precision bound when it
		// exceeds the calendar's ΔG_min, so an honest station is never muted.
		if sys.Syncer != nil {
			// Follow the *acting* master across failovers: after a takeover
			// the calendar grid is anchored to the new master's clock.
			c.Guardian.LocalAt = func(t sim.Time) sim.Time {
				return sys.Clocks[sys.Syncer.Master].Read(t)
			}
			if p := clock.PrecisionBound(sys.Cfg.Sync, sys.Cfg.MaxDriftPPM); p > c.Guardian.Cal.Cfg.GapMin {
				c.Guardian.Slack = p
			}
		}
		sys.Bus.Guardian = c.Guardian
	}
	return c, nil
}

// Install schedules every scripted event on the kernel. Fault windows are
// chained onto the bus's existing injector.
func (c *Campaign) Install() {
	k := c.Sys.K
	chain := can.Chain{c.Sys.Bus.Injector}
	for _, e := range c.Script.Events {
		e := e
		switch e.Kind {
		case "crash":
			k.At(ms(e.AtMS), func() {
				if err := c.LC.Crash(e.Node); err != nil {
					c.Errors = append(c.Errors, err)
				}
			})
		case "restart":
			k.At(ms(e.AtMS), func() {
				if err := c.LC.Restart(e.Node); err != nil {
					c.Errors = append(c.Errors, err)
				}
			})
		case "agent_crash":
			k.At(ms(e.AtMS), func() {
				n := c.LC.AgentStation()
				if err := c.LC.Crash(n); err != nil {
					c.Errors = append(c.Errors, err)
					return
				}
				c.lastAgentDown = n
				c.agentDownAt = append(c.agentDownAt, k.Now())
			})
		case "agent_restart":
			k.At(ms(e.AtMS), func() {
				if c.lastAgentDown < 0 {
					c.Errors = append(c.Errors, fmt.Errorf("chaos: agent_restart with no crashed agent"))
					return
				}
				n := c.lastAgentDown
				c.lastAgentDown = -1
				if err := c.LC.Restart(n); err != nil {
					c.Errors = append(c.Errors, err)
				}
			})
		case "master_crash":
			k.At(ms(e.AtMS), func() {
				n := c.Sys.Syncer.Master
				if err := c.LC.Crash(n); err != nil {
					c.Errors = append(c.Errors, err)
					return
				}
				c.lastMasterDown = n
				c.masterDownAt = append(c.masterDownAt, k.Now())
			})
		case "master_restart":
			k.At(ms(e.AtMS), func() {
				if c.lastMasterDown < 0 {
					c.Errors = append(c.Errors, fmt.Errorf("chaos: master_restart with no crashed master"))
					return
				}
				n := c.lastMasterDown
				c.lastMasterDown = -1
				if err := c.LC.Restart(n); err != nil {
					c.Errors = append(c.Errors, err)
				}
			})
		case "burst":
			chain = append(chain, can.BurstErrors{Start: ms(e.AtMS), End: ms(e.UntilMS)})
		case "omission":
			chain = append(chain, window{
				start: ms(e.AtMS), end: ms(e.UntilMS),
				inner: can.NewRandomOmissions(e.Rate, e.VictimProb, c.Sys.Bus.Controllers()),
			})
		case "babble":
			b := c.babbler(e.Node)
			k.At(ms(e.AtMS), func() { b.Start(ms(e.UntilMS)) })
		case "bit_error":
			chain = append(chain, window{
				start: ms(e.AtMS), end: ms(e.UntilMS),
				inner: can.TargetedBitErrors{Victim: e.Node, Rate: e.Rate, Prio: -1},
			})
		case "busoff_attack":
			// Two coupled halves: the attacking station fires prio-0 frames
			// timed into the victim's calendar slots (the guardian-visible
			// signature), and a targeted bit-error injector corrupts the
			// victim's transmission attempts (the physical damage). Both stop
			// when the guardian isolates the attacker — a muted station can
			// no longer drive dominant bits onto the wire.
			a := c.attacker(e.Node, e.Victim)
			k.At(ms(e.AtMS), func() { a.Start(ms(e.UntilMS)) })
			attackerCtrl := c.Sys.Bus.Controller(e.Node)
			chain = append(chain, window{
				start: ms(e.AtMS), end: ms(e.UntilMS),
				inner: can.TargetedBitErrors{
					Victim: e.Victim, Rate: e.Rate, Prio: -1,
					Active: func() bool { return !attackerCtrl.Muted() },
				},
			})
			c.attacks = append(c.attacks, AttackWindow{
				Start: ms(e.AtMS), End: ms(e.UntilMS),
				Attacker: e.Node, Victim: e.Victim, Rate: e.Rate,
			})
		}
	}
	if len(chain) > 1 {
		c.Sys.Bus.Injector = chain
	}
}

func (c *Campaign) babbler(node int) *Babbler {
	b, ok := c.Babblers[node]
	if !ok {
		b = &Babbler{K: c.Sys.K, Ctrl: c.Sys.Bus.Controller(node), Etag: 0x3210}
		c.Babblers[node] = b
	}
	return b
}

func (c *Campaign) attacker(node, victim int) *Attacker {
	a, ok := c.Attackers[node]
	if !ok {
		a = &Attacker{
			K: c.Sys.K, Ctrl: c.Sys.Bus.Controller(node),
			Cal: c.Sys.Cfg.Calendar, Epoch: c.Sys.Cfg.Epoch,
			Victim: can.TxNode(victim), Etag: 0x3211,
		}
		c.Attackers[node] = a
	}
	return a
}

// window gates an injector to a kernel-time interval.
type window struct {
	start, end sim.Time
	inner      can.Injector
}

// Judge implements can.Injector.
func (w window) Judge(f can.Frame, sender, attempt int, at sim.Time, rng *sim.RNG) can.Fault {
	if at < w.start || at >= w.end {
		return can.Fault{}
	}
	return w.inner.Judge(f, sender, attempt, at, rng)
}

// Babbler models the babbling-idiot failure: a station that transmits at
// the reserved HRT priority 0, back to back, with no regard for the
// calendar. Without a bus guardian it starves every legitimate HRT slot
// whose publisher has a higher (numerically larger) node number; with one
// its frames are muted before reaching the wire.
type Babbler struct {
	K    *sim.Kernel
	Ctrl *can.Controller
	// Etag carried by the babble frames (any value works: the damage is
	// wire occupation, not content).
	Etag can.Etag

	active bool
	until  sim.Time
	// Sent counts babble frames that made it onto the wire; Muted counts
	// submissions that failed (bus guardian or single-shot loss).
	Sent, Muted int
}

// Start begins babbling until the given kernel time. Restarting an active
// babbler just extends the window.
func (b *Babbler) Start(until sim.Time) {
	b.until = until
	if b.active {
		return
	}
	b.active = true
	b.next()
}

// Stop ends the babble immediately.
func (b *Babbler) Stop() { b.active = false }

func (b *Babbler) next() {
	if !b.active || b.K.Now() >= b.until || b.Ctrl.Muted() {
		b.active = false
		return
	}
	f := can.Frame{
		ID:   can.MakeID(0, b.Ctrl.Node(), b.Etag),
		Data: []byte{0xBA, 0xBB, 0x1E, 0, 0, 0, 0, 0},
	}
	b.Ctrl.Submit(f, can.SubmitOpts{Done: func(ok bool, _ sim.Time) {
		if ok {
			b.Sent++
			// Back to back: resubmit as soon as this frame left the wire.
			b.K.After(0, b.next)
			return
		}
		b.Muted++
		// A muted frame fails synchronously during arbitration; back off a
		// little so the retry cannot livelock the current instant.
		b.K.After(20*sim.Microsecond, b.next)
	}})
}

// Attacker models the adversary ECU of a bus-off attack campaign: a
// station that fires priority-0 single-shot frames timed precisely into
// the victim's calendar slot windows. The frames themselves rarely reach
// the wire (a guardian mutes them, arbitration may reject them), but
// their *timing* is the attack's observable signature: the guardian's
// slot-targeted escalation recognises a station that keeps firing into
// windows it does not own. The physical corruption of the victim's
// transmissions is injected separately (can.TargetedBitErrors), mirroring
// how a real attacker's dominant bits damage frames without the attacker
// ever winning arbitration.
type Attacker struct {
	K    *sim.Kernel
	Ctrl *can.Controller
	// Cal / Epoch locate the victim's slot windows; without a calendar (or
	// a victim owning no slots) the attacker degrades to periodic pulses.
	Cal    *calendar.Calendar
	Epoch  sim.Time
	Victim can.TxNode
	// Etag carried by the attack frames (content is irrelevant).
	Etag can.Etag

	active bool
	until  sim.Time
	// Sent counts attack frames that made it onto the wire; Muted counts
	// submissions rejected before it (bus guardian or single-shot loss).
	Sent, Muted int
}

// Start begins the attack until the given kernel time. Restarting an
// active attacker extends the window.
func (a *Attacker) Start(until sim.Time) {
	a.until = until
	if a.active {
		return
	}
	a.active = true
	a.schedule()
}

// Stop ends the attack immediately.
func (a *Attacker) Stop() { a.active = false }

// nextPulse picks the next instant inside a victim-owned slot window
// strictly after now; with no calendar (or no victim slots) it falls back
// to a periodic pulse.
func (a *Attacker) nextPulse() sim.Time {
	now := a.K.Now()
	const fallback = 500 * sim.Microsecond
	if a.Cal == nil || a.Cal.Round <= 0 {
		return now + fallback
	}
	rel := now - a.Epoch
	r := int64(0)
	if rel > 0 {
		r = int64(rel / sim.Duration(a.Cal.Round))
	}
	best := sim.Time(-1)
	for _, s := range a.Cal.Slots {
		if s.Publisher != a.Victim {
			continue
		}
		for rr := r; rr <= r+2; rr++ {
			if rr < 0 || !s.ActiveIn(rr) {
				continue
			}
			// Fire just after the slot opens: the victim's frame is then on
			// (or about to take) the wire, and the instant is unambiguously
			// inside a window the attacker does not own.
			t := a.Epoch + sim.Time(rr)*sim.Time(a.Cal.Round) + sim.Time(s.Ready) + sim.Time(10*sim.Microsecond)
			if t > now && (best < 0 || t < best) {
				best = t
			}
		}
	}
	if best < 0 {
		return now + fallback
	}
	return best
}

func (a *Attacker) schedule() {
	if !a.active || a.K.Now() >= a.until || a.Ctrl.Muted() {
		a.active = false
		return
	}
	t := a.nextPulse()
	if t >= a.until {
		a.active = false
		return
	}
	a.K.At(t, a.fire)
}

func (a *Attacker) fire() {
	if !a.active || a.K.Now() >= a.until || a.Ctrl.Muted() {
		a.active = false
		return
	}
	f := can.Frame{
		ID:   can.MakeID(0, a.Ctrl.Node(), a.Etag),
		Data: []byte{0xA7, 0x7A, 0xC4, 0, 0, 0, 0, 0},
	}
	// Single shot: a muted or corrupted attack frame must not sit in the
	// controller retrying — the attacker's value is timing, not delivery.
	a.Ctrl.Submit(f, can.SubmitOpts{SingleShot: true, Done: func(ok bool, _ sim.Time) {
		if ok {
			a.Sent++
		} else {
			a.Muted++
		}
		a.schedule()
	}})
}

// Report summarises a finished campaign for logs and experiment output.
type Report struct {
	Crashes, Restarts int
	// AgentTakeovers counts standby promotions to binding agent;
	// MasterTakeovers counts time-master failovers.
	AgentTakeovers   int
	MasterTakeovers  int
	GuardianMuted    uint64
	GuardianIsolated uint64
	BabbleSent       int
	BabbleMuted      int
	// BusOffEvents counts controller bus-off entries on the bus;
	// BusOffRecovered counts supervised rejoins (lifecycle supervisor).
	// AttackSent / AttackMuted tally the adversary stations' slot-timed
	// frames that reached / were kept off the wire.
	BusOffEvents    uint64
	BusOffRecovered int
	AttackSent      int
	AttackMuted     int
	Violations      []Violation
	// Errors are scripted events that failed to execute (e.g. a restart of
	// a station that was never crashed).
	Errors []string
	// PostMortem lists the flight-recorder dump files written because the
	// campaign found invariant violations (empty when no recorder was
	// attached or all invariants held).
	PostMortem []string
}

// Finish runs the invariant checkers over the recorded trace and returns
// the campaign report. recoveryRounds bounds how many rounds a recovered
// node may need to re-occupy its slots (0 selects the default).
func (c *Campaign) Finish(recoveryRounds int) Report {
	var round sim.Duration
	if cal := c.Sys.Cfg.Calendar; cal != nil {
		round = cal.Round
	}
	ctx := CheckContext{
		Records:        c.Sys.Obs.Records(),
		Round:          round,
		RecoveryRounds: recoveryRounds,
		AgentDownAt:    c.agentDownAt,
		MasterDownAt:   c.masterDownAt,
	}
	if len(c.agentDownAt) > 0 {
		// Window: the standby's watchdog promotes at most MissLimit+1 beat
		// periods after the last agent frame; one extra period absorbs the
		// beat in flight when the agent died.
		hb := binding.HeartbeatConfig{
			Period:    sim.Duration(ms(c.Script.AgentHeartbeatMS)),
			MissLimit: c.Script.AgentMissLimit,
		}
		hb = hb.WithDefaults()
		ctx.AgentWindow = hb.Period * sim.Duration(hb.MissLimit+2)
	}
	if len(c.masterDownAt) > 0 && c.Sys.Syncer != nil {
		cfg := c.Sys.Syncer.Cfg
		// Rank 0 promotes within FailoverRounds+1 periods of master silence;
		// each dead higher rank adds one period. One extra period absorbs the
		// round in flight at the crash.
		rounds := cfg.FailoverRounds
		if rounds <= 0 {
			rounds = 3
		}
		ctx.MasterWindow = cfg.Period * sim.Duration(rounds+len(c.Sys.Syncer.Backups())+1)
	}
	if c.LC.CrashCount > 0 {
		// Every restart that began at least this long before the end of the
		// trace must have completed (node_up): bounded re-join plus one sync
		// round plus the re-bind round-trips.
		win := 2 * ctx.AgentWindow
		if c.Sys.Syncer != nil && 2*c.Sys.Syncer.Cfg.Period > win {
			win = 2 * c.Sys.Syncer.Cfg.Period
		}
		ctx.RestartWindow = win + 100*sim.Millisecond
	}
	if c.Sys.Cfg.ConfineFaults {
		// Bus-off recovery bound: the 128×11-recessive-bit observation plus
		// the supervisor's declared worst-case backoff (or nothing, when the
		// controllers' built-in auto-recovery is in charge), plus one
		// millisecond of queue-drain grace.
		win := c.Sys.Bus.BitDuration(can.BusOffRecoveryBits)
		if c.LC.BusOffRecoveryArmed() {
			win = c.LC.BusOffRecoveryBound()
		}
		ctx.BusOffWindow = win + sim.Millisecond
	}
	ctx.Attacks = c.attacks
	ctx.GuardianArmed = c.Guardian != nil &&
		(c.Script.GuardianLimit > 0 || c.Script.GuardianSlotLimit > 0)
	rep := Report{
		Crashes:        c.LC.CrashCount,
		Restarts:       c.LC.RestartCount,
		AgentTakeovers: c.LC.AgentTakeovers,
		Violations:     CheckAll(ctx),
	}
	if c.Sys.Syncer != nil {
		rep.MasterTakeovers = c.Sys.Syncer.Takeovers
	}
	st := c.Sys.Bus.Stats()
	rep.GuardianMuted = st.GuardianMuted
	rep.GuardianIsolated = st.GuardianIsolated
	rep.BusOffEvents = st.BusOffEvents
	rep.BusOffRecovered = c.LC.BusOffRecovered
	for _, b := range c.Babblers {
		rep.BabbleSent += b.Sent
		rep.BabbleMuted += b.Muted
	}
	for _, a := range c.Attackers {
		rep.AttackSent += a.Sent
		rep.AttackMuted += a.Muted
	}
	for _, e := range c.Errors {
		rep.Errors = append(rep.Errors, e.Error())
	}
	if len(rep.Violations) > 0 {
		if f := c.Sys.Obs.Flight(); f != nil {
			if paths, err := f.Dump("chaos-invariant"); err == nil {
				rep.PostMortem = paths
			} else {
				rep.Errors = append(rep.Errors, "post-mortem dump: "+err.Error())
			}
		}
	}
	return rep
}
