package chaos

import (
	"encoding/json"
	"testing"
)

// FuzzScript hardens the chaos-campaign JSON surface: canecsim feeds
// user-supplied script files straight into json.Decode + Validate, so
// arbitrary bytes must never panic, and a script that validates must
// survive a marshal/unmarshal round trip with its verdict intact
// (otherwise a saved campaign could change meaning when re-run).
func FuzzScript(f *testing.F) {
	f.Add([]byte(`{}`), 4)
	f.Add([]byte(`{"events":[{"kind":"crash","at_ms":10,"node":1},{"kind":"restart","at_ms":50,"node":1}]}`), 4)
	f.Add([]byte(`{"events":[{"kind":"bit_error","at_ms":0,"until_ms":100,"node":1,"rate":0.2}]}`), 3)
	f.Add([]byte(`{"events":[{"kind":"omission","at_ms":5,"until_ms":20,"rate":0.1,"victim_prob":1}]}`), 3)
	f.Add([]byte(`{"guardian":true,"guardian_slot_limit":20,"events":[{"kind":"busoff_attack","at_ms":300,"until_ms":700,"node":8,"victim":1,"rate":0.5}]}`), 9)
	f.Add([]byte(`{"agent_standby":2,"events":[{"kind":"agent_crash","at_ms":10}]}`), 4)
	f.Add([]byte(`{"sync_backups":[1,2],"events":[{"kind":"master_crash","at_ms":10},{"kind":"master_restart","at_ms":90}]}`), 4)
	f.Add([]byte(`{"events":[{"kind":"babble","at_ms":-1,"until_ms":2,"node":99}]}`), 4)
	f.Add([]byte(`{"events":[{"kind":"burst","at_ms":10,"until_ms":5}]}`), 4)
	f.Fuzz(func(t *testing.T, data []byte, nodes int) {
		if nodes < 0 || nodes > 1<<16 {
			nodes = 8
		}
		var s Script
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		valid := s.Validate(nodes) == nil
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid-parsed script failed to marshal: %v", err)
		}
		var back Script
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("marshalled script failed to re-parse: %v\n%s", err, out)
		}
		if backValid := back.Validate(nodes) == nil; backValid != valid {
			t.Fatalf("validity changed across round trip (%v -> %v):\nin:  %s\nout: %s",
				valid, backValid, data, out)
		}
	})
}
