package chaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"canec/internal/core"
	"canec/internal/relay"
	"canec/internal/sim"
)

// LinkFaults parameterises fault injection on one relay TCP link.
type LinkFaults struct {
	// ExtraLatency delays every forwarded message by this much, in both
	// directions (one-way added latency per hop).
	ExtraLatency time.Duration
	// FrameLossRate drops each data-plane frame message with this
	// probability. Control messages (hello, subs, heartbeats) are never
	// dropped, so loss degrades the data plane without flapping the link.
	FrameLossRate float64
	// Seed feeds the loss RNG; runs with the same seed and traffic
	// interleaving drop the same frames.
	Seed uint64
}

// LinkProxy is a fault-injecting TCP proxy for relay links: an uplink
// dials the proxy, the proxy dials the real relay server and forwards
// length-prefixed relay messages, applying LinkFaults on the way and
// flapping (closing) live connections on demand. It lets chaos runs
// exercise link loss, added latency and reconnection without touching
// the relay implementation.
type LinkProxy struct {
	target string
	lis    net.Listener

	mu     sync.Mutex
	faults LinkFaults
	rng    *sim.RNG
	conns  map[net.Conn]struct{}
	closed bool

	// DroppedFrames counts data-plane messages discarded by loss
	// injection; Flaps counts ruptures forced via Flap.
	DroppedFrames atomic.Uint64
	Flaps         atomic.Uint64
}

// NewLinkProxy starts a proxy on an ephemeral localhost port that
// forwards to target (a relay.Server address).
func NewLinkProxy(target string, faults LinkFaults) (*LinkProxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: link proxy listen: %w", err)
	}
	p := &LinkProxy{
		target: target,
		lis:    lis,
		faults: faults,
		rng:    sim.NewRNG(faults.Seed ^ 0xD1CE),
		conns:  make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address uplinks should dial.
func (p *LinkProxy) Addr() string { return p.lis.Addr().String() }

// SetFaults swaps the active fault set; it applies to messages forwarded
// from now on, over live connections too.
func (p *LinkProxy) SetFaults(f LinkFaults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Flap severs every live proxied connection. The relay endpoints see a
// peer disconnect; uplinks re-dial through the proxy.
func (p *LinkProxy) Flap() {
	p.Flaps.Add(1)
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and severs all connections.
func (p *LinkProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.lis.Close()
	p.Flap()
}

func (p *LinkProxy) acceptLoop() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		go p.serve(c)
	}
}

func (p *LinkProxy) serve(client net.Conn) {
	server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	closeBoth := func() {
		client.Close()
		server.Close()
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, server)
		p.mu.Unlock()
	}
	var once sync.Once
	go func() { p.pipe(client, server); once.Do(closeBoth) }()
	go func() { p.pipe(server, client); once.Do(closeBoth) }()
}

// pipe forwards relay messages from src to dst, injecting the currently
// configured faults. It understands only the outer length-prefixed
// framing, so it stays valid across protocol versions.
func (p *LinkProxy) pipe(src, dst net.Conn) {
	var hdr [4]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > 1<<20 {
			return // corrupt stream; kill the proxied link
		}
		if int(n) > len(buf) {
			buf = make([]byte, n)
		}
		body := buf[:n]
		if _, err := io.ReadFull(src, body); err != nil {
			return
		}
		p.mu.Lock()
		f := p.faults
		drop := f.FrameLossRate > 0 && body[0] == relay.MsgFrame && p.rng.Bool(f.FrameLossRate)
		p.mu.Unlock()
		if drop {
			p.DroppedFrames.Add(1)
			continue
		}
		if f.ExtraLatency > 0 {
			time.Sleep(f.ExtraLatency)
		}
		if _, err := dst.Write(hdr[:]); err != nil {
			return
		}
		if _, err := dst.Write(body); err != nil {
			return
		}
	}
}

// RelayCheckContext parameterises the relay-liveness invariant checkers
// run after a link-chaos campaign.
type RelayCheckContext struct {
	// Events is the relay endpoint's Config.Trace stream, in order.
	Events []relay.Event
	// Counters is the endpoint's final statistics.
	Counters *relay.Counters
	// ConnectedAtEnd reports whether the link was up when the campaign
	// finished (uplink.Connected(), or server.Peers() > 0).
	ConnectedAtEnd bool
	// DeliveredAfterFaults counts frames that crossed the link after the
	// last fault was lifted; liveness demands it be positive when
	// RequireDelivery is set.
	DeliveredAfterFaults uint64
	RequireDelivery      bool
}

// CheckRelayLiveness replays a relay trace against the federation
// dependability invariants:
//
//   - hrt-never-dropped: no drop event may carry an HRT frame — the
//     relay policy forwards HRT late rather than shedding it.
//   - link-recovers: a link that went down during the campaign must be
//     up again at the end (re-dial liveness).
//   - relay-liveness: traffic flows again once faults are lifted.
//   - drop-accounting: every traced drop is counted, so operators can
//     alarm on the counters alone.
func CheckRelayLiveness(ctx RelayCheckContext) []Violation {
	var out []Violation
	drops := uint64(0)
	downs := 0
	for _, e := range ctx.Events {
		switch e.Kind {
		case "drop":
			drops++
			if e.Frame != nil && e.Frame.Class == core.HRT {
				out = append(out, Violation{
					Check: "hrt-never-dropped",
					Detail: fmt.Sprintf("relay dropped an HRT frame (peer %s: %s)",
						e.Peer, e.Detail),
				})
			}
		case "down":
			downs++
		}
	}
	if downs > 0 && !ctx.ConnectedAtEnd {
		out = append(out, Violation{
			Check:  "link-recovers",
			Detail: fmt.Sprintf("link went down %d time(s) and was still down at the end of the campaign", downs),
		})
	}
	if ctx.RequireDelivery && ctx.DeliveredAfterFaults == 0 {
		out = append(out, Violation{
			Check:  "relay-liveness",
			Detail: "no frames crossed the link after faults were lifted",
		})
	}
	if ctx.Counters != nil && ctx.Counters.Dropped() < drops {
		out = append(out, Violation{
			Check: "drop-accounting",
			Detail: fmt.Sprintf("trace shows %d drops but counters report %d",
				drops, ctx.Counters.Dropped()),
		})
	}
	return out
}
