package chaos

import (
	"reflect"
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
)

// cpRig is the six-station system for control-plane failover campaigns:
// station 0 hosts the binding agent, station 1 is the initial time master,
// stations 2 and 3 publish the two HRT subjects, station 4 subscribes to
// both, and station 5 is the agent standby and first-ranked sync backup —
// so both control-plane roles can fail over while the data plane keeps
// publishing.
type cpRig struct {
	t         *testing.T
	sys       *core.System
	lc        *core.Lifecycle
	cal       *calendar.Calendar
	pubs      map[binding.Subject]*core.HRTEC
	delivered map[binding.Subject]int
	late      int
}

func newCPRig(t *testing.T, seed uint64) *cpRig {
	t.Helper()
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjSteer), Publisher: 2, Payload: 8, Periodic: true},
		calendar.Slot{Subject: uint64(subjBrake), Publisher: 3, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	sync := clock.DefaultSyncConfig()
	sync.Period = 20 * sim.Millisecond
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:            6,
		Seed:             seed,
		Calendar:         cal,
		Sync:             sync,
		Master:           1,
		MaxDriftPPM:      20,
		MaxInitialOffset: 100 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &cpRig{
		t: t, sys: sys, cal: cal,
		lc:        core.NewLifecycle(sys),
		pubs:      make(map[binding.Subject]*core.HRTEC),
		delivered: make(map[binding.Subject]int),
	}
	for _, c := range channels {
		r.announce(c.subj, sys.Node(c.owner).MW)
	}
	r.lc.OnRestart = func(n int, mw *core.Middleware) {
		for _, c := range channels {
			if c.owner == n {
				r.announce(c.subj, mw)
			}
		}
	}
	for _, c := range channels {
		subj := c.subj
		sub, err := sys.Node(4).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				r.delivered[subj]++
				if di.Late {
					r.late++
				}
			}, nil)
	}
	return r
}

func (r *cpRig) announce(subj binding.Subject, mw *core.Middleware) {
	c, err := mw.HRTEC(subj)
	if err != nil {
		r.t.Fatalf("HRTEC(%#x): %v", uint64(subj), err)
	}
	if err := c.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		r.t.Fatalf("Announce(%#x): %v", uint64(subj), err)
	}
	r.pubs[subj] = c
}

func (r *cpRig) drive(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		i := i
		r.sys.K.At(r.sys.Cfg.Epoch+sim.Time(i)*r.cal.Round-100*sim.Microsecond, func() {
			for _, c := range channels {
				if !r.lc.Down(c.owner) {
					_ = r.pubs[c.subj].Publish(core.Event{Subject: c.subj, Payload: []byte{byte(i)}})
				}
			}
		})
	}
}

// controlPlaneScript crashes the acting binding agent and, later, the
// acting time master, restarting each after its successor took over.
func controlPlaneScript() Script {
	standby := 5
	return Script{
		AgentStandby:     &standby,
		AgentHeartbeatMS: 5,
		AgentMissLimit:   3,
		SyncBackups:      []int{5},
		FailoverRounds:   2,
		Events: []Event{
			{Kind: "agent_crash", AtMS: 100},
			{Kind: "agent_restart", AtMS: 200},
			{Kind: "master_crash", AtMS: 280},
			{Kind: "master_restart", AtMS: 400},
		},
	}
}

const cpRounds = 45

func runControlPlane(t *testing.T, seed uint64) (*cpRig, Report) {
	t.Helper()
	r := newCPRig(t, seed)
	c, err := NewCampaign(r.sys, r.lc, controlPlaneScript())
	if err != nil {
		t.Fatal(err)
	}
	r.drive(cpRounds)
	c.Install()
	r.sys.Run(r.sys.Cfg.Epoch + cpRounds*r.cal.Round)
	rep := c.Finish(0)
	for _, e := range c.Errors {
		t.Errorf("campaign event failed: %v", e)
	}
	return r, rep
}

// TestCampaignControlPlaneFailover crashes the binding agent and the time
// master mid-run and asserts both roles fail over inside their windows
// (checker-enforced), both crashed stations recover by re-joining against
// the new agent, and the data plane keeps delivering throughout.
func TestCampaignControlPlaneFailover(t *testing.T) {
	r, rep := runControlPlane(t, 1)
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %v", v)
	}
	if rep.Crashes != 2 || rep.Restarts != 2 {
		t.Fatalf("crashes/restarts = %d/%d, want 2/2", rep.Crashes, rep.Restarts)
	}
	if rep.AgentTakeovers != 1 {
		t.Fatalf("agent takeovers = %d, want 1", rep.AgentTakeovers)
	}
	if rep.MasterTakeovers != 1 {
		t.Fatalf("master takeovers = %d, want 1", rep.MasterTakeovers)
	}
	if got := r.lc.AgentStation(); got != 5 {
		t.Fatalf("acting agent on station %d, want 5", got)
	}
	if r.sys.Syncer.Master != 5 {
		t.Fatalf("acting master is station %d, want 5", r.sys.Syncer.Master)
	}
	// The deposed agent station re-armed as the new standby after its
	// restart, so the control plane is again 1-fault tolerant.
	if r.lc.Standby() == nil || r.lc.Standby().Active() {
		t.Fatal("old agent station did not re-arm as the new standby")
	}
	// Publishers 2 and 3 never crashed: deliveries flow through both
	// takeovers (the binding and sync outages are control-plane only).
	for _, c := range channels {
		if got := r.delivered[c.subj]; got < cpRounds-2 {
			t.Fatalf("subject %#x: %d deliveries, want ≥ %d", uint64(c.subj), got, cpRounds-2)
		}
	}
	if r.late != 0 {
		t.Fatalf("%d late HRT deliveries across the failovers", r.late)
	}
	// The trace carries the full control-plane story.
	var agentTO, masterTO, hEnter, hExit bool
	for _, rec := range r.sys.Obs.Records() {
		switch rec.Stage {
		case obs.StageAgentTakeover:
			agentTO = true
		case obs.StageMasterTakeover:
			masterTO = true
		case obs.StageHoldoverEnter:
			hEnter = true
		case obs.StageHoldoverExit:
			hExit = true
		}
	}
	if !agentTO || !masterTO {
		t.Fatalf("takeover records missing: agent=%v master=%v", agentTO, masterTO)
	}
	if !hEnter || !hExit {
		t.Fatalf("holdover records missing: enter=%v exit=%v", hEnter, hExit)
	}
}

// TestCampaignControlPlaneDeterministic asserts bit-identical traces and
// reports for two runs of the control-plane campaign under one seed.
func TestCampaignControlPlaneDeterministic(t *testing.T) {
	r1, rep1 := runControlPlane(t, 9)
	r2, rep2 := runControlPlane(t, 9)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("reports diverge:\n%+v\n%+v", rep1, rep2)
	}
	a, b := r1.sys.Obs.Records(), r2.sys.Obs.Records()
	if len(a) != len(b) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace record %d diverges:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestControlPlaneScriptValidate pins validation of the new script surface.
func TestControlPlaneScriptValidate(t *testing.T) {
	if err := controlPlaneScript().Validate(6); err != nil {
		t.Fatalf("control-plane script rejected: %v", err)
	}
	bad := []Script{
		// agent_crash without a standby armed.
		{Events: []Event{{Kind: "agent_crash", AtMS: 1}}},
		// agent_restart with no preceding agent_crash.
		{Events: []Event{{Kind: "agent_restart", AtMS: 1}}},
		// master_restart with no preceding master_crash.
		{Events: []Event{{Kind: "master_restart", AtMS: 1}}},
	}
	for i, s := range bad {
		if err := s.Validate(6); err == nil {
			t.Errorf("script %d validated, want error", i)
		}
	}
	// standby out of range / on the agent's own station
	for _, st := range []int{0, 6, -1} {
		st := st
		s := Script{AgentStandby: &st}
		if err := s.Validate(6); err == nil {
			t.Errorf("agent_standby %d validated, want error", st)
		}
	}
	// crash of station 0 is legal once a standby is armed
	st := 2
	s := Script{AgentStandby: &st, Events: []Event{{Kind: "crash", AtMS: 1, Node: 0}}}
	if err := s.Validate(6); err != nil {
		t.Errorf("crash of station 0 with standby rejected: %v", err)
	}
}
