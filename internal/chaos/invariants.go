package chaos

import (
	"fmt"
	"sort"

	"canec/internal/obs"
	"canec/internal/sim"
)

// Violation is one invariant breach found in a trace.
type Violation struct {
	// Check names the violated invariant.
	Check string
	// ID is the offending trace (0 for node-level violations).
	ID uint64
	// At is when the breach manifests.
	At sim.Time
	// Detail explains the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: id=%d at=%v: %s", v.Check, v.ID, v.At, v.Detail)
}

// CheckContext parameterises the invariant checkers.
type CheckContext struct {
	// Records is the obs lifecycle trace of the finished run.
	Records []obs.Record
	// Round is the calendar round length (0 disables round-based checks).
	Round sim.Duration
	// RecoveryRounds bounds how many rounds after node_up a slot-owning
	// node may need before its first HRT transmission (0 selects 5).
	RecoveryRounds int
	// AgentDownAt lists the times the acting binding agent's station was
	// crashed; AgentWindow bounds how long after each of them an
	// agent_takeover record must appear (0 disables the check).
	AgentDownAt []sim.Time
	AgentWindow sim.Duration
	// MasterDownAt / MasterWindow likewise bound master_takeover records,
	// and MasterWindow additionally gates the holdover-closure check:
	// follower holdover entered before a takeover must end once a new
	// master serves corrections.
	MasterDownAt []sim.Time
	MasterWindow sim.Duration
	// RestartWindow requires every node_restart that began at least this
	// long before the end of the trace to have reached node_up (0 disables
	// the check).
	RestartWindow sim.Duration
	// BusOffWindow bounds bus-off recovery: every bus_off record must be
	// answered by a bus_off_recovered for the same node within it (0
	// disables the check). Campaigns on confined buses derive it from the
	// 128×11-recessive-bit rule plus the supervisor's declared backoff.
	BusOffWindow sim.Duration
	// Attacks lists the scripted bus-off attack windows; they arm the
	// HRT-survival, victim-bus-off and attacker-isolation checks.
	Attacks []AttackWindow
	// GuardianArmed tells the attack checkers an isolating guardian was
	// installed, so the attacker must end up isolated.
	GuardianArmed bool
}

func (c CheckContext) recoveryRounds() int {
	if c.RecoveryRounds <= 0 {
		return 5
	}
	return c.RecoveryRounds
}

// outage is one [down, restart) interval of a station: the span in which
// it must be completely silent on the bus. up marks completed recovery.
type outage struct {
	down, restart, up sim.Time
	restarted         bool
	recovered         bool
}

// outages reconstructs each station's crash windows from the trace.
func outages(recs []obs.Record) map[int][]outage {
	m := make(map[int][]outage)
	for _, r := range recs {
		switch r.Stage {
		case obs.StageNodeDown:
			m[r.Node] = append(m[r.Node], outage{down: r.At, restart: -1, up: -1})
		case obs.StageNodeRestart:
			if w := last(m[r.Node]); w != nil && !w.restarted {
				w.restart, w.restarted = r.At, true
			}
		case obs.StageNodeUp:
			if w := last(m[r.Node]); w != nil && !w.recovered {
				w.up, w.recovered = r.At, true
			}
		}
	}
	return m
}

func last(ws []outage) *outage {
	if len(ws) == 0 {
		return nil
	}
	return &ws[len(ws)-1]
}

// silentIn reports whether node must be silent at t (strictly after a
// crash, before the matching restart began).
func silentIn(ws map[int][]outage, node int, t sim.Time) bool {
	for _, w := range ws[node] {
		end := w.restart
		if !w.restarted {
			return t > w.down
		}
		if t > w.down && t < end {
			return true
		}
	}
	return false
}

// CheckAll runs every invariant checker and returns the union of
// violations, ordered by time.
func CheckAll(ctx CheckContext) []Violation {
	var out []Violation
	out = append(out, CheckMonotonicTraces(ctx)...)
	out = append(out, CheckHRTTermination(ctx)...)
	out = append(out, CheckHRTOnTime(ctx)...)
	out = append(out, CheckNoPhantoms(ctx)...)
	out = append(out, CheckRecoveryBound(ctx)...)
	out = append(out, CheckAgentFailover(ctx)...)
	out = append(out, CheckMasterFailover(ctx)...)
	out = append(out, CheckHoldoverClosed(ctx)...)
	out = append(out, CheckRestartCompletes(ctx)...)
	out = append(out, CheckBusOffRecovery(ctx)...)
	out = append(out, CheckVictimBusOff(ctx)...)
	out = append(out, CheckHRTSurvival(ctx)...)
	out = append(out, CheckAttackerIsolated(ctx)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CheckMonotonicTraces asserts that every trace chain carries
// non-decreasing timestamps: an event cannot reach a later lifecycle stage
// at an earlier time.
func CheckMonotonicTraces(ctx CheckContext) []Violation {
	var out []Violation
	lastAt := make(map[uint64]sim.Time)
	lastStage := make(map[uint64]obs.Stage)
	for _, r := range ctx.Records {
		if r.ID == 0 {
			continue
		}
		if prev, ok := lastAt[r.ID]; ok && r.At < prev {
			out = append(out, Violation{
				Check: "monotonic-trace", ID: r.ID, At: r.At,
				Detail: fmt.Sprintf("stage %s at %v precedes stage %s at %v", r.Stage, r.At, lastStage[r.ID], prev),
			})
		}
		lastAt[r.ID] = r.At
		lastStage[r.ID] = r.Stage
	}
	return out
}

// terminal reports whether a stage closes a trace.
func terminal(s obs.Stage) bool {
	switch s {
	case obs.StageDelivered, obs.StageDropped, obs.StageExpired, obs.StageShed, obs.StageTxAbort:
		return true
	}
	return false
}

// CheckHRTTermination asserts that every published HRT event reaches a
// terminal stage: delivered at its deadline or closed by a clean local
// exception (dropped / tx_abort, including the node_crash drop emitted for
// events that die in a crashing node's queues). Events published within
// the last two rounds of the trace are excused as in flight at the end of
// the run, and an unterminated trace is excused when its publisher crashed
// within two rounds of the publish (the in-flight frame was truncated by
// the crash).
func CheckHRTTermination(ctx CheckContext) []Violation {
	type trace struct {
		pubAt   sim.Time
		node    int
		done    bool
		subject uint64
	}
	traces := make(map[uint64]*trace)
	var order []uint64
	var end sim.Time
	for _, r := range ctx.Records {
		if r.At > end {
			end = r.At
		}
		if r.ID == 0 {
			continue
		}
		if r.Stage == obs.StagePublished && r.Class == "HRT" {
			traces[r.ID] = &trace{pubAt: r.At, node: r.Node, subject: r.Subject}
			order = append(order, r.ID)
			continue
		}
		if t, ok := traces[r.ID]; ok && terminal(r.Stage) {
			t.done = true
		}
	}
	// slot_missed records are the subscriber-side clean local exception: a
	// receiver detected the loss and raised SlotMissed. They carry trace ID
	// 0 (the receiver never saw the frame) but name the subject, so they
	// excuse an unterminated publish on that subject near the miss time.
	missed := make(map[uint64][]sim.Time)
	for _, r := range ctx.Records {
		if r.Stage == obs.StageMissed {
			missed[r.Subject] = append(missed[r.Subject], r.At)
		}
	}
	ws := outages(ctx.Records)
	grace := 2 * ctx.Round
	if grace == 0 {
		grace = 2 * sim.Millisecond
	}
	var out []Violation
	for _, id := range order {
		t := traces[id]
		if t.done || t.pubAt > end-grace {
			continue
		}
		if crashedWithin(ws, t.node, t.pubAt, t.pubAt+grace) {
			continue
		}
		if missedNear(missed[t.subject], t.pubAt, grace) {
			continue
		}
		out = append(out, Violation{
			Check: "hrt-terminates", ID: id, At: t.pubAt,
			Detail: fmt.Sprintf("HRT event on subject %#x published at %v by node %d never reached a terminal stage", t.subject, t.pubAt, t.node),
		})
	}
	return out
}

// missedNear reports whether a SlotMissed exception was raised for the
// subject within grace after the publish.
func missedNear(at []sim.Time, pubAt sim.Time, grace sim.Duration) bool {
	for _, t := range at {
		if t >= pubAt && t <= pubAt+grace {
			return true
		}
	}
	return false
}

// crashedWithin reports whether node went down inside [from, to].
func crashedWithin(ws map[int][]outage, node int, from, to sim.Time) bool {
	for _, w := range ws[node] {
		if w.down >= from && w.down <= to {
			return true
		}
	}
	return false
}

// CheckHRTOnTime asserts that no HRT delivery was flagged late: the
// middleware marks a delivery "late" when it happens past the slot
// deadline by more than twice the clock precision, which breaks the
// paper's delivery-at-deadline guarantee. Late deliveries on subjects
// published by a scripted bus-off attack's victim inside the attack
// window are excused — retransmission storms delaying the victim's own
// traffic are the attack working, not a de-jittering bug.
func CheckHRTOnTime(ctx CheckContext) []Violation {
	var publishers map[uint64]map[int]bool
	if len(ctx.Attacks) > 0 {
		publishers = hrtPublishers(ctx.Records)
	}
	var out []Violation
	for _, r := range ctx.Records {
		if r.Stage == obs.StageDelivered && r.Class == "HRT" && r.Detail == "late" {
			if ctx.attackExcused(publishers, r.Subject, r.At) {
				continue
			}
			out = append(out, Violation{
				Check: "hrt-on-time", ID: r.ID, At: r.At,
				Detail: fmt.Sprintf("HRT delivery on subject %#x at %v flagged late", r.Subject, r.At),
			})
		}
	}
	return out
}

// CheckNoPhantoms asserts crash silence: a station contributes no
// arbitration wins, transmission starts or successful transmissions
// strictly inside any of its [down, restart) windows (error frames are the
// legitimate artifact of a truncated in-flight frame), and no event is
// delivered off a transmission that happened while its sender was down.
func CheckNoPhantoms(ctx CheckContext) []Violation {
	ws := outages(ctx.Records)
	var out []Violation
	phantomTxOK := make(map[uint64]bool)
	for _, r := range ctx.Records {
		switch r.Stage {
		case obs.StageArbWon, obs.StageTxStart, obs.StageTxOK, obs.StageRx:
			node := r.Node
			if r.Stage == obs.StageRx {
				continue // receiver-side; sender silence is checked via tx stages
			}
			if silentIn(ws, node, r.At) {
				out = append(out, Violation{
					Check: "no-phantom", ID: r.ID, At: r.At,
					Detail: fmt.Sprintf("stage %s from node %d at %v inside its crash window", r.Stage, node, r.At),
				})
				if r.Stage == obs.StageTxOK {
					phantomTxOK[r.ID] = true
				}
			}
		case obs.StageDelivered:
			if r.ID != 0 && phantomTxOK[r.ID] {
				out = append(out, Violation{
					Check: "no-phantom", ID: r.ID, At: r.At,
					Detail: fmt.Sprintf("delivery at %v rides a transmission sent during the sender's crash window", r.At),
				})
			}
		}
	}
	return out
}

// takeoverWithin reports whether a record of the given stage appears in
// (after, after+window].
func takeoverWithin(recs []obs.Record, stage obs.Stage, after sim.Time, window sim.Duration) bool {
	for _, r := range recs {
		if r.Stage == stage && r.At > after && r.At <= after+window {
			return true
		}
	}
	return false
}

// CheckAgentFailover asserts that each scripted crash of the acting binding
// agent is answered by a standby takeover within the heartbeat window.
func CheckAgentFailover(ctx CheckContext) []Violation {
	if ctx.AgentWindow <= 0 {
		return nil
	}
	var out []Violation
	for _, down := range ctx.AgentDownAt {
		if !takeoverWithin(ctx.Records, obs.StageAgentTakeover, down, ctx.AgentWindow) {
			out = append(out, Violation{
				Check: "agent-failover", At: down,
				Detail: fmt.Sprintf("binding agent crashed at %v; no standby takeover within %v", down, ctx.AgentWindow),
			})
		}
	}
	return out
}

// CheckMasterFailover asserts that each scripted crash of the acting time
// master is answered by a backup takeover within the failover window.
func CheckMasterFailover(ctx CheckContext) []Violation {
	if ctx.MasterWindow <= 0 {
		return nil
	}
	var out []Violation
	for _, down := range ctx.MasterDownAt {
		if !takeoverWithin(ctx.Records, obs.StageMasterTakeover, down, ctx.MasterWindow) {
			out = append(out, Violation{
				Check: "master-failover", At: down,
				Detail: fmt.Sprintf("time master crashed at %v; no backup takeover within %v", down, ctx.MasterWindow),
			})
		}
	}
	return out
}

// CheckHoldoverClosed asserts, on runs where master failover is exercised
// (MasterWindow set), that follower holdover is transient: every
// holdover_enter is followed by a holdover_exit, unless the node crashed
// after entering or entered too close to the end of the trace for a
// takeover plus sync round to have happened.
func CheckHoldoverClosed(ctx CheckContext) []Violation {
	if ctx.MasterWindow <= 0 {
		return nil
	}
	openAt := make(map[int]sim.Time)
	var end sim.Time
	for _, r := range ctx.Records {
		if r.At > end {
			end = r.At
		}
		switch r.Stage {
		case obs.StageHoldoverEnter:
			openAt[r.Node] = r.At
		case obs.StageHoldoverExit, obs.StageNodeDown:
			delete(openAt, r.Node)
		}
	}
	var out []Violation
	for node, at := range openAt {
		if at > end-2*ctx.MasterWindow {
			continue // entered too late in the run to demand re-convergence
		}
		out = append(out, Violation{
			Check: "holdover-closed", At: at,
			Detail: fmt.Sprintf("node %d entered holdover at %v and never re-converged on a master", node, at),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CheckRestartCompletes asserts that every restart reaches node_up: a
// station that began recovery at least RestartWindow before the end of the
// trace (and did not crash again mid-recovery) must have a node_up record.
func CheckRestartCompletes(ctx CheckContext) []Violation {
	if ctx.RestartWindow <= 0 {
		return nil
	}
	var end sim.Time
	for _, r := range ctx.Records {
		if r.At > end {
			end = r.At
		}
	}
	var out []Violation
	for node, ws := range outages(ctx.Records) {
		for i, w := range ws {
			if !w.restarted || w.recovered {
				continue
			}
			if i+1 < len(ws) {
				continue // crashed again mid-recovery
			}
			if w.restart > end-ctx.RestartWindow {
				continue // still recovering at the end of the run
			}
			out = append(out, Violation{
				Check: "restart-completes", At: w.restart,
				Detail: fmt.Sprintf("node %d began recovery at %v but never reached node_up", node, w.restart),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CheckRecoveryBound asserts that a recovered station that owned HRT slots
// before its crash resumes occupying them within RecoveryRounds rounds of
// node_up.
func CheckRecoveryBound(ctx CheckContext) []Violation {
	if ctx.Round <= 0 {
		return nil
	}
	// Which nodes transmitted HRT before each of their outages, and when
	// did they first transmit HRT after recovery?
	hrtTxAt := make(map[int][]sim.Time)
	for _, r := range ctx.Records {
		if r.Stage == obs.StageTxOK && r.Band == "hrt" {
			hrtTxAt[r.Node] = append(hrtTxAt[r.Node], r.At)
		}
	}
	bound := sim.Duration(ctx.recoveryRounds()) * ctx.Round
	var out []Violation
	for node, ws := range outages(ctx.Records) {
		for _, w := range ws {
			if !w.recovered {
				continue
			}
			owned := false
			resumedBy := sim.Time(-1)
			for _, at := range hrtTxAt[node] {
				if at <= w.down {
					owned = true
				}
				if at >= w.up && (resumedBy < 0 || at < resumedBy) {
					resumedBy = at
				}
			}
			if !owned {
				continue
			}
			if resumedBy < 0 || resumedBy > w.up+bound {
				out = append(out, Violation{
					Check: "recovery-bound", At: w.up,
					Detail: fmt.Sprintf("node %d recovered at %v but did not resume HRT slot occupancy within %d rounds", node, w.up, ctx.recoveryRounds()),
				})
			}
		}
	}
	return out
}
