package chaos

import (
	"fmt"
	"sort"

	"canec/internal/obs"
	"canec/internal/sim"
)

// AttackWindow is one scripted bus-off attack interval, recorded by
// Install and handed to the checkers through CheckContext.Attacks.
type AttackWindow struct {
	Start, End       sim.Time
	Attacker, Victim int
	// Rate is the scripted per-attempt corruption probability; the
	// victim-reaches-bus-off assertion only fires for decisive rates
	// (≥ 0.5), where the TEC ramp is essentially deterministic.
	Rate float64
}

// attackGrace is the slack the attack checkers allow beyond a window: the
// detection and isolation machinery needs a few slot occurrences to see
// the pattern.
func (c CheckContext) attackGrace() sim.Duration {
	if c.Round > 0 {
		return 2 * c.Round
	}
	return 2 * sim.Millisecond
}

// hrtPublishers maps each HRT subject to the set of stations that
// published on it during the run.
func hrtPublishers(recs []obs.Record) map[uint64]map[int]bool {
	publishers := make(map[uint64]map[int]bool)
	for _, r := range recs {
		if r.Stage == obs.StagePublished && r.Class == "HRT" {
			m, ok := publishers[r.Subject]
			if !ok {
				m = make(map[int]bool)
				publishers[r.Subject] = m
			}
			m[r.Node] = true
		}
	}
	return publishers
}

// attackExcused reports whether an anomaly on subject at t is attributable
// to a scripted bus-off attack: t falls inside an attack window (extended
// by the grace plus the bus-off recovery bound, covering the victim's
// post-attack drain) and the subject is published by that attack's victim.
// The victim's own traffic arriving late — or not at all — IS the attack;
// the invariants guard everyone else.
func (c CheckContext) attackExcused(publishers map[uint64]map[int]bool, subject uint64, at sim.Time) bool {
	tail := c.attackGrace() + c.BusOffWindow
	for _, a := range c.Attacks {
		if at >= a.Start && at <= a.End+sim.Time(tail) && publishers[subject][a.Victim] {
			return true
		}
	}
	return false
}

// CheckBusOffRecovery asserts that every controller entering bus-off
// recovers within the declared bound: a bus_off record must be answered by
// a bus_off_recovered record for the same node within BusOffWindow (the
// 128×11-recessive-bit observation plus the supervisor's worst-case
// backoff). Bus-offs too close to the end of the trace are excused as
// still observing recessive bits.
func CheckBusOffRecovery(ctx CheckContext) []Violation {
	if ctx.BusOffWindow <= 0 {
		return nil
	}
	var end sim.Time
	recovered := make(map[int][]sim.Time)
	for _, r := range ctx.Records {
		if r.At > end {
			end = r.At
		}
		if r.Stage == obs.StageBusOffRecovered {
			recovered[r.Node] = append(recovered[r.Node], r.At)
		}
	}
	var out []Violation
	for _, r := range ctx.Records {
		if r.Stage != obs.StageBusOff {
			continue
		}
		if r.At > end-sim.Time(ctx.BusOffWindow) {
			continue // still inside its recovery window at trace end
		}
		ok := false
		for _, at := range recovered[r.Node] {
			if at > r.At && at <= r.At+sim.Time(ctx.BusOffWindow) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, Violation{
				Check: "busoff-recovery", At: r.At,
				Detail: fmt.Sprintf("node %d entered bus-off at %v and did not recover within %v", r.Node, r.At, ctx.BusOffWindow),
			})
		}
	}
	return out
}

// CheckVictimBusOff asserts the attack worked: under a decisive corruption
// rate (≥ 0.5) the scripted victim must actually reach bus-off inside the
// attack window — a campaign whose attack silently fizzles would otherwise
// "prove" HRT survival against nothing. An attack the guardian cut short
// (the attacker was isolated before the victim's counters ramped) is a
// defensive success, not a fizzle, and is excused.
func CheckVictimBusOff(ctx CheckContext) []Violation {
	if ctx.BusOffWindow <= 0 {
		return nil
	}
	var out []Violation
	for _, a := range ctx.Attacks {
		if a.Rate < 0.5 {
			continue
		}
		hit, isolated := false, false
		for _, r := range ctx.Records {
			if r.Stage == obs.StageBusOff && r.Node == a.Victim &&
				r.At >= a.Start && r.At <= a.End {
				hit = true
				break
			}
			if r.Stage == obs.StageGuardIsolated && r.Node == a.Attacker &&
				r.At >= a.Start && r.At <= a.End {
				isolated = true
			}
		}
		if !hit && !isolated {
			out = append(out, Violation{
				Check: "victim-busoff", At: a.Start,
				Detail: fmt.Sprintf("station %d attacked victim %d at rate %v in [%v, %v) but the victim never reached bus-off", a.Attacker, a.Victim, a.Rate, a.Start, a.End),
			})
		}
	}
	return out
}

// CheckHRTSurvival asserts the defense's core promise: during a bus-off
// attack, healthy nodes' HRT slots never miss. Every slot_missed record
// inside an attack window (plus grace) is attributed to its subject's
// publishers; misses on subjects published by the victim (its slots *are*
// under attack) or by a station inside a crash outage are excused.
func CheckHRTSurvival(ctx CheckContext) []Violation {
	if len(ctx.Attacks) == 0 {
		return nil
	}
	publishers := hrtPublishers(ctx.Records)
	ws := outages(ctx.Records)
	grace := ctx.attackGrace()
	var out []Violation
	for _, r := range ctx.Records {
		if r.Stage != obs.StageMissed {
			continue
		}
		for _, a := range ctx.Attacks {
			if r.At < a.Start || r.At > a.End+sim.Time(grace) {
				continue
			}
			pubs := publishers[r.Subject]
			if pubs[a.Victim] {
				continue // the victim's own slots are expected to miss
			}
			healthy := false
			for p := range pubs {
				if !silentIn(ws, p, r.At) {
					healthy = true
					break
				}
			}
			if len(pubs) > 0 && !healthy {
				continue // every publisher of the subject was crashed
			}
			out = append(out, Violation{
				Check: "hrt-survival", At: r.At,
				Detail: fmt.Sprintf("healthy HRT subject %#x missed a slot at %v during the bus-off attack on station %d", r.Subject, r.At, a.Victim),
			})
			break
		}
	}
	return out
}

// CheckAttackerIsolated asserts that an armed guardian ends every scripted
// attack by isolating the attacking station: a guard_isolated record for
// the attacker must appear inside the attack window plus grace.
func CheckAttackerIsolated(ctx CheckContext) []Violation {
	if !ctx.GuardianArmed {
		return nil
	}
	grace := ctx.attackGrace()
	var out []Violation
	for _, a := range ctx.Attacks {
		hit := false
		for _, r := range ctx.Records {
			if r.Stage == obs.StageGuardIsolated && r.Node == a.Attacker &&
				r.At >= a.Start && r.At <= a.End+sim.Time(grace) {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, Violation{
				Check: "attacker-isolated", At: a.Start,
				Detail: fmt.Sprintf("the guardian never isolated attacking station %d during its window [%v, %v)", a.Attacker, a.Start, a.End),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
