package clock

import (
	"math"
	"testing"
	"testing/quick"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestClockDriftAdvance(t *testing.T) {
	c := New(100, 0) // +100 ppm
	got := c.Read(1 * sim.Second)
	want := sim.Time(1*sim.Second) + 100*sim.Microsecond
	if got != want {
		t.Fatalf("Read(1s) = %v, want %v", got, want)
	}
}

func TestClockInitialOffset(t *testing.T) {
	c := New(0, 5*sim.Millisecond)
	if c.Read(0) != 5*sim.Millisecond {
		t.Fatalf("Read(0) = %v", c.Read(0))
	}
	if c.OffsetAt(0) != 5*sim.Millisecond {
		t.Fatalf("OffsetAt = %v", c.OffsetAt(0))
	}
}

func TestClockAdjustBy(t *testing.T) {
	c := New(50, 2*sim.Millisecond)
	c.AdjustBy(1*sim.Second, -c.OffsetAt(1*sim.Second))
	if off := c.OffsetAt(1 * sim.Second); off != 0 {
		t.Fatalf("offset after correction = %v", off)
	}
	// Drift keeps accumulating after the adjustment.
	off := c.OffsetAt(2 * sim.Second)
	if off < 49*sim.Microsecond || off > 51*sim.Microsecond {
		t.Fatalf("offset 1s after correction = %v, want ≈50µs", off)
	}
}

func TestWhenLocalInverse(t *testing.T) {
	f := func(driftPPM int16, offMs int16, targetMs uint16) bool {
		c := New(float64(driftPPM%500), sim.Duration(offMs)*sim.Millisecond)
		local := sim.Time(targetMs)*sim.Millisecond + 10*sim.Second
		tt := c.WhenLocal(0, local)
		if tt == 0 {
			// Clamped: the local target already passed.
			return c.Read(0) >= local-2
		}
		// Reading at the returned true time must be within 1 ns·(1+drift)
		// of the target (ceil rounding).
		diff := float64(c.Read(tt) - local)
		return diff >= 0 && diff <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWhenLocalNeverPast(t *testing.T) {
	c := New(0, 1*sim.Second) // local runs 1s ahead
	if got := c.WhenLocal(500, 100); got != 500 {
		t.Fatalf("WhenLocal for past local time = %v, want now", got)
	}
}

func TestMaxSkew(t *testing.T) {
	clocks := []*Clock{New(0, 0), New(0, 30*sim.Microsecond), New(0, -10*sim.Microsecond)}
	if got := MaxSkew(0, clocks); got != 40*sim.Microsecond {
		t.Fatalf("MaxSkew = %v, want 40µs", got)
	}
	if MaxSkew(0, nil) != 0 {
		t.Fatal("MaxSkew(nil) != 0")
	}
}

func TestScheduleLocalFiresAtLocalTime(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(200, 0) // fast clock: local 10ms arrives before true 10ms
	var fired sim.Time
	ScheduleLocal(k, c, 10*sim.Millisecond, func() { fired = k.Now() })
	k.RunUntilIdle()
	if fired == 0 {
		t.Fatal("never fired")
	}
	if c.Read(fired) < 10*sim.Millisecond {
		t.Fatalf("fired before local target: local=%v", c.Read(fired))
	}
	if fired >= 10*sim.Millisecond {
		t.Fatalf("fast clock should fire before true 10ms, fired at %v", fired)
	}
}

func TestScheduleLocalSurvivesAdjustment(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(0, 5*sim.Millisecond) // local ahead: naive target would fire early
	var fired sim.Time
	ScheduleLocal(k, c, 10*sim.Millisecond, func() { fired = k.Now() })
	// At true 2ms, sync pulls the clock back to true time.
	k.At(2*sim.Millisecond, func() { c.AdjustBy(k.Now(), -c.OffsetAt(k.Now())) })
	k.RunUntilIdle()
	if c.Read(fired) < 10*sim.Millisecond {
		t.Fatalf("fired at local %v, before target", c.Read(fired))
	}
	if fired < 9*sim.Millisecond {
		t.Fatalf("fired at true %v despite correction", fired)
	}
}

// syncRig builds a bus with n nodes, random drifts/offsets, and a running
// syncer whose frames are routed back into HandleFrame.
func syncRig(t *testing.T, n int, cfg SyncConfig, maxDriftPPM float64, seed uint64) (*sim.Kernel, []*Clock, *Syncer) {
	t.Helper()
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	clocks := make([]*Clock, n)
	for i := 0; i < n; i++ {
		drift := (k.RNG().Float64()*2 - 1) * maxDriftPPM
		off := k.RNG().Jitter(500 * sim.Microsecond)
		clocks[i] = New(drift, off)
		bus.Attach(can.TxNode(i))
	}
	s := NewSyncer(k, bus, cfg, 0, clocks)
	for i := 0; i < n; i++ {
		i := i
		bus.Controller(i).OnReceive = func(f can.Frame, at sim.Time) {
			if f.ID.Etag() == cfg.Etag {
				s.HandleFrame(i, f, at)
			}
		}
	}
	return k, clocks, s
}

func TestSyncConvergesToPrecisionBound(t *testing.T) {
	cfg := DefaultSyncConfig()
	const maxDrift = 100.0
	k, clocks, s := syncRig(t, 8, cfg, maxDrift, 7)
	s.Start()
	bound := PrecisionBound(cfg, maxDrift)
	// Sample the skew *during* the run (clock state is piecewise linear
	// since the last adjustment, so only live sampling is meaningful).
	var worst sim.Duration
	for at := sim.Time(500 * sim.Millisecond); at <= 2*sim.Second; at += 10 * sim.Millisecond {
		k.At(at, func() {
			if sk := MaxSkew(k.Now(), clocks); sk > worst {
				worst = sk
			}
		})
	}
	k.Run(2 * sim.Second)
	if s.Rounds < 10 {
		t.Fatalf("only %d sync rounds completed", s.Rounds)
	}
	if worst > bound {
		t.Fatalf("worst live skew %v exceeds analytical bound %v", worst, bound)
	}
}

func TestSyncPrecisionScalesWithPeriod(t *testing.T) {
	const maxDrift = 100.0
	measure := func(period sim.Duration) sim.Duration {
		cfg := DefaultSyncConfig()
		cfg.Period = period
		k, clocks, s := syncRig(t, 6, cfg, maxDrift, 11)
		s.Start()
		var worst sim.Duration
		// Sample skew at 1 ms intervals during the second half of the run.
		for at := sim.Time(2 * sim.Second); at <= 4*sim.Second; at += sim.Millisecond {
			at := at
			k.At(at, func() {
				if sk := MaxSkew(k.Now(), clocks); sk > worst {
					worst = sk
				}
			})
		}
		k.Run(4 * sim.Second)
		return worst
	}
	fast := measure(50 * sim.Millisecond)
	slow := measure(800 * sim.Millisecond)
	if fast >= slow {
		t.Fatalf("precision should improve with sync rate: fast=%v slow=%v", fast, slow)
	}
}

func TestSyncMasterIsReference(t *testing.T) {
	cfg := DefaultSyncConfig()
	k, clocks, s := syncRig(t, 4, cfg, 100, 13)
	s.Start()
	k.Run(1 * sim.Second)
	// All slaves track the master, so slave-vs-master offsets stay within
	// the precision bound even though master-vs-true may wander.
	bound := PrecisionBound(cfg, 100)
	m := clocks[0].Read(1 * sim.Second)
	for i := 1; i < 4; i++ {
		d := clocks[i].Read(1*sim.Second) - m
		if d < 0 {
			d = -d
		}
		if d > bound {
			t.Fatalf("slave %d skew vs master = %v > %v", i, d, bound)
		}
	}
}

func TestPrecisionBoundFormula(t *testing.T) {
	cfg := SyncConfig{Period: 100 * sim.Millisecond, Quantization: 1 * sim.Microsecond}
	got := PrecisionBound(cfg, 100)
	want := 4*sim.Microsecond + sim.Duration(2*100e-6*float64(100*sim.Millisecond)) + sim.Microsecond
	if got != want {
		t.Fatalf("PrecisionBound = %v, want %v", got, want)
	}
	// The paper's ΔG_min = 40 µs assumption must hold for the default
	// configuration: precision below the gap.
	if got > 40*sim.Microsecond {
		t.Fatalf("default-config precision %v exceeds the paper's 40µs gap", got)
	}
}

func TestClockReadMonotoneNoAdjust(t *testing.T) {
	f := func(driftPPM int16, a, b uint32) bool {
		c := New(float64(driftPPM%900), 0)
		ta, tb := sim.Time(a), sim.Time(b)
		if ta > tb {
			ta, tb = tb, ta
		}
		return c.Read(ta) <= c.Read(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftPPMRoundTrip(t *testing.T) {
	c := New(75.5, 0)
	if math.Abs(c.DriftPPM()-75.5) > 1e-9 {
		t.Fatalf("DriftPPM = %v", c.DriftPPM())
	}
}
