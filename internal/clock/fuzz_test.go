package clock

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// FuzzSyncerHandleFrame feeds arbitrary sync-channel payloads into the
// follower-side parser. No input may panic it, and a frame that is not a
// well-formed SYNC/FOLLOW-UP pair must leave the follower clocks
// untouched.
func FuzzSyncerHandleFrame(f *testing.F) {
	f.Add([]byte{packHeader(msgSync, 3)}, 1)
	f.Add([]byte{packHeader(msgFollowUp, 3), 1, 2, 3, 4, 5, 6, 7}, 1)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 2)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, node int) {
		if len(data) > can.MaxPayload {
			data = data[:can.MaxPayload]
		}
		k := sim.NewKernel(1)
		bus := can.NewBus(k, can.DefaultBitRate)
		clocks := []*Clock{New(0, 0), New(50, sim.Microsecond), New(-50, 0)}
		for i := range clocks {
			bus.Attach(can.TxNode(i))
		}
		s := NewSyncer(k, bus, DefaultSyncConfig(), 0, clocks)
		node = ((node % len(clocks)) + len(clocks)) % len(clocks)
		before := clocks[node].OffsetAt(0)
		s.HandleFrame(node, can.Frame{
			ID:   can.MakeID(1, 0, can.Etag(0x3FFF)),
			Data: data,
		}, sim.Millisecond)
		// A lone frame can never adjust a clock: SYNC only records a
		// timestamp, FOLLOW-UP needs a recorded SYNC to pair with.
		if clocks[node].OffsetAt(0) != before {
			t.Fatalf("single frame adjusted clock %d", node)
		}
	})
}

// FuzzTSRoundTrip pins the 56-bit timestamp encoding used by FOLLOW-UP
// frames: non-negative times below 2^55 must survive the wire.
func FuzzTSRoundTrip(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(sim.Second))
	f.Add(int64(1) << 54)
	f.Fuzz(func(t *testing.T, v int64) {
		if v < 0 || v >= 1<<55 {
			t.Skip()
		}
		var buf [7]byte
		putTS(buf[:], sim.Time(v))
		if got := getTS(buf[:]); got != sim.Time(v) {
			t.Fatalf("getTS(putTS(%d)) = %d", v, got)
		}
	})
}
