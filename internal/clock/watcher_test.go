package clock

import (
	"testing"

	"canec/internal/sim"
)

func TestScheduleLocalUnregistersAfterFiring(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(0, 0)
	fired := 0
	ScheduleLocal(k, c, 10*sim.Millisecond, func() { fired++ })
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Adjustments after firing must not re-trigger the callback.
	c.AdjustBy(k.Now(), 50*sim.Millisecond)
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired again after unregistration: %d", fired)
	}
	if len(c.watchers) != 0 {
		t.Fatalf("watchers leaked: %d", len(c.watchers))
	}
}

func TestScheduleLocalForwardJumpFiresPromptly(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(0, 0)
	var fired sim.Time
	ScheduleLocal(k, c, 10*sim.Millisecond, func() { fired = k.Now() })
	// At 2 ms true time the clock jumps forward past the target.
	k.At(2*sim.Millisecond, func() { c.AdjustBy(k.Now(), 20*sim.Millisecond) })
	k.RunUntilIdle()
	if fired != 2*sim.Millisecond {
		t.Fatalf("fired at %v, want immediately at the jump (2ms)", fired)
	}
}

func TestScheduleLocalManyTimersOneAdjustment(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(0, 0)
	fired := make([]sim.Time, 0, 10)
	for i := 1; i <= 10; i++ {
		target := sim.Time(i) * 10 * sim.Millisecond
		ScheduleLocal(k, c, target, func() { fired = append(fired, k.Now()) })
	}
	// A backward adjustment at 35 ms delays everything by 5 ms of local
	// time; all pending timers must re-arm and still fire in order, at or
	// after their local targets.
	k.At(35*sim.Millisecond, func() { c.AdjustBy(k.Now(), -5*sim.Millisecond) })
	k.RunUntilIdle()
	if len(fired) != 10 {
		t.Fatalf("fired = %d", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatal("timers fired out of order after adjustment")
		}
	}
	// Timers past the adjustment fire 5 ms later in true time.
	if fired[9] != 105*sim.Millisecond {
		t.Fatalf("last timer at %v, want 105ms", fired[9])
	}
	if len(c.watchers) != 0 {
		t.Fatalf("watchers leaked: %d", len(c.watchers))
	}
}

func TestSetToNotifiesWatchers(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(0, 0)
	var fired sim.Time
	ScheduleLocal(k, c, 10*sim.Millisecond, func() { fired = k.Now() })
	k.At(sim.Millisecond, func() { c.SetTo(k.Now(), 9500*sim.Microsecond) })
	k.RunUntilIdle()
	// After SetTo, local lags true by 8.5ms... local(1ms)=9.5ms, target
	// 10ms arrives 0.5ms later in true time.
	if fired != 1500*sim.Microsecond {
		t.Fatalf("fired at %v, want 1.5ms", fired)
	}
}

func TestWatcherAddDuringNotify(t *testing.T) {
	// A watcher that schedules a new local timer (adding a watcher) while
	// being notified must not corrupt the notification pass.
	k := sim.NewKernel(1)
	c := New(0, 0)
	fired := 0
	ScheduleLocal(k, c, 5*sim.Millisecond, func() {
		fired++
		ScheduleLocal(k, c, 15*sim.Millisecond, func() { fired++ })
	})
	k.At(sim.Millisecond, func() { c.AdjustBy(k.Now(), 10*sim.Millisecond) })
	k.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}
