package clock

import (
	"encoding/binary"

	"canec/internal/can"
	"canec/internal/sim"
)

// Sync frame payload layout: byte 0 carries the message type in the high
// nibble and a 4-bit sequence number in the low nibble; FOLLOW-UP frames
// additionally carry the master's captured timestamp as 7 little-endian
// bytes (2^56 ns ≈ 833 days of simulated time), fitting CAN's 8-byte
// payload limit.
const (
	msgSync     = 0x1
	msgFollowUp = 0x2
)

func packHeader(typ byte, seq uint8) byte { return typ<<4 | seq&0x0f }

func putTS(dst []byte, ts sim.Time) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ts))
	copy(dst, buf[:7])
}

func getTS(src []byte) sim.Time {
	var buf [8]byte
	copy(buf[:7], src)
	// Sign-extend: local clocks can read negative early in a run when a
	// node starts with a negative offset.
	if buf[6]&0x80 != 0 {
		buf[7] = 0xff
	}
	return sim.Time(binary.LittleEndian.Uint64(buf[:]))
}

// SyncConfig parameterises the synchronization protocol.
type SyncConfig struct {
	// Period between synchronization rounds. The paper assumes the
	// combination of sync quality and frequency keeps the precision below
	// the ΔG_min = 40 µs inter-slot gap.
	Period sim.Duration
	// Prio used for sync frames. The default of 1 places them directly
	// below the HRT priority 0, so their medium-access latency is bounded
	// by one frame length plus pending HRT traffic.
	Prio can.Prio
	// Etag reserved for the synchronization channel.
	Etag can.Etag
	// Quantization is the timestamping granularity at the receivers: each
	// captured timestamp gets uniform noise in [−Q, +Q]. A CAN controller
	// timestamps with bit-time granularity, so 1 µs is realistic at
	// 1 Mbit/s.
	Quantization sim.Duration
}

// DefaultSyncConfig matches the paper's environment: 1 µs timestamp
// granularity, sync every 100 ms, priority 1.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		Period:       100 * sim.Millisecond,
		Prio:         1,
		Etag:         can.MaxEtag, // highest etag reserved for sync
		Quantization: 1 * sim.Microsecond,
	}
}

// Syncer runs master-based clock synchronization over a CAN bus, in the
// style of Gergeleit/Streich [9]: a SYNC frame is timestamped by all nodes
// at its (bus-wide simultaneous) completion instant, then the master
// broadcasts its captured timestamp in a FOLLOW-UP frame; receivers apply
// the difference as a state correction.
type Syncer struct {
	K      *sim.Kernel
	Cfg    SyncConfig
	Bus    *can.Bus
	Master int // controller index of the time master

	clocks []*Clock
	seq    uint8
	rxTS   []map[uint8]sim.Time // per node: seq -> local rx timestamp

	// Rounds counts completed synchronization rounds.
	Rounds int
}

// NewSyncer creates a synchronization service for the given clocks
// (indexed by controller index; clocks[Master] is the reference).
func NewSyncer(k *sim.Kernel, bus *can.Bus, cfg SyncConfig, master int, clocks []*Clock) *Syncer {
	s := &Syncer{K: k, Cfg: cfg, Bus: bus, Master: master, clocks: clocks}
	s.rxTS = make([]map[uint8]sim.Time, len(clocks))
	for i := range s.rxTS {
		s.rxTS[i] = make(map[uint8]sim.Time)
	}
	return s
}

// Start schedules the periodic sync rounds. The first round fires
// immediately so that a freshly configured system converges before HRT
// traffic begins.
func (s *Syncer) Start() {
	var round func()
	round = func() {
		s.sendSync()
		s.K.After(s.Cfg.Period, round)
	}
	s.K.After(0, round)
}

// sendSync emits one SYNC frame and, once it completes on the wire, the
// FOLLOW-UP carrying the master's captured transmission timestamp.
func (s *Syncer) sendSync() {
	s.seq++
	seq := s.seq
	ctrl := s.Bus.Controller(s.Master)
	sync := can.Frame{
		ID:   can.MakeID(s.Cfg.Prio, ctrl.Node(), s.Cfg.Etag),
		Data: []byte{packHeader(msgSync, seq)},
	}
	ctrl.Submit(sync, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
		if !ok {
			return
		}
		// The master timestamps the same completion instant the receivers
		// saw, with the same quantization.
		txLocal := s.stamp(s.Master, at)
		fu := make([]byte, 8)
		fu[0] = packHeader(msgFollowUp, seq)
		putTS(fu[1:], txLocal)
		ctrl.Submit(can.Frame{
			ID:   can.MakeID(s.Cfg.Prio, ctrl.Node(), s.Cfg.Etag),
			Data: fu,
		}, can.SubmitOpts{})
	}})
}

// stamp reads node i's local clock at true time at, with quantization
// noise.
func (s *Syncer) stamp(i int, at sim.Time) sim.Time {
	ts := s.clocks[i].Read(at)
	if q := s.Cfg.Quantization; q > 0 {
		ts += s.K.RNG().Jitter(q)
	}
	return ts
}

// HandleFrame processes a received sync-channel frame at receiver node.
// The core middleware (or a test harness) routes frames with the sync etag
// here.
func (s *Syncer) HandleFrame(node int, f can.Frame, at sim.Time) {
	if len(f.Data) < 1 || node == s.Master {
		return
	}
	seq := f.Data[0] & 0x0f
	switch f.Data[0] >> 4 {
	case msgSync:
		s.rxTS[node][seq] = s.stamp(node, at)
	case msgFollowUp:
		if len(f.Data) < 8 {
			return
		}
		rx, ok := s.rxTS[node][seq]
		if !ok {
			return
		}
		delete(s.rxTS[node], seq)
		masterTx := getTS(f.Data[1:])
		s.clocks[node].AdjustBy(at, masterTx-rx)
		if node == s.lastNonMaster() {
			s.Rounds++
		}
	}
}

// lastNonMaster returns the highest node index that is not the master,
// used only to count completed rounds.
func (s *Syncer) lastNonMaster() int {
	for i := len(s.clocks) - 1; i >= 0; i-- {
		if i != s.Master {
			return i
		}
	}
	return s.Master
}

// PrecisionBound returns the analytical worst-case pairwise precision π
// for the given configuration and maximum absolute drift. Right after an
// adjustment each slave is within 2Q of the master's local time (one
// quantization error at the master stamp, one at the slave stamp), so two
// slaves differ by at most 4Q; between adjustments two slaves drift apart
// at a relative rate of at most 2·d_max, accumulating 2·d_max·Period. One
// extra microsecond absorbs second-order terms (follow-up latency times
// drift, rounding).
func PrecisionBound(cfg SyncConfig, maxDriftPPM float64) sim.Duration {
	driftPart := 2 * maxDriftPPM * 1e-6 * float64(cfg.Period)
	return 4*cfg.Quantization + sim.Duration(driftPart) + sim.Microsecond
}
