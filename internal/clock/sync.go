package clock

import (
	"encoding/binary"

	"canec/internal/can"
	"canec/internal/sim"
)

// Sync frame payload layout: byte 0 carries the message type in the high
// nibble and a 4-bit sequence number in the low nibble; FOLLOW-UP frames
// additionally carry the master's captured timestamp as 7 little-endian
// bytes (2^56 ns ≈ 833 days of simulated time), fitting CAN's 8-byte
// payload limit.
const (
	msgSync     = 0x1
	msgFollowUp = 0x2
)

func packHeader(typ byte, seq uint8) byte { return typ<<4 | seq&0x0f }

func putTS(dst []byte, ts sim.Time) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ts))
	copy(dst, buf[:7])
}

func getTS(src []byte) sim.Time {
	var buf [8]byte
	copy(buf[:7], src)
	// Sign-extend: local clocks can read negative early in a run when a
	// node starts with a negative offset.
	if buf[6]&0x80 != 0 {
		buf[7] = 0xff
	}
	return sim.Time(binary.LittleEndian.Uint64(buf[:]))
}

// SyncConfig parameterises the synchronization protocol.
type SyncConfig struct {
	// Period between synchronization rounds. The paper assumes the
	// combination of sync quality and frequency keeps the precision below
	// the ΔG_min = 40 µs inter-slot gap.
	Period sim.Duration
	// Prio used for sync frames. The default of 1 places them directly
	// below the HRT priority 0, so their medium-access latency is bounded
	// by one frame length plus pending HRT traffic.
	Prio can.Prio
	// Etag reserved for the synchronization channel.
	Etag can.Etag
	// Quantization is the timestamping granularity at the receivers: each
	// captured timestamp gets uniform noise in [−Q, +Q]. A CAN controller
	// timestamps with bit-time granularity, so 1 µs is realistic at
	// 1 Mbit/s.
	Quantization sim.Duration
	// MaxDriftPPM is the assumed bound on per-node clock rate error, the
	// parameter of the holdover uncertainty model (how fast clocks can
	// diverge while no master is correcting them). Zero disables growth.
	MaxDriftPPM float64
	// FailoverRounds is how many consecutive missed sync rounds the
	// highest-ranked backup master tolerates before taking over; each
	// lower rank waits one additional round, which staggers the takeover
	// deterministically. Zero selects 3.
	FailoverRounds int
}

// failoverRounds returns the effective takeover threshold.
func (c SyncConfig) failoverRounds() int {
	if c.FailoverRounds <= 0 {
		return 3
	}
	return c.FailoverRounds
}

// DefaultSyncConfig matches the paper's environment: 1 µs timestamp
// granularity, sync every 100 ms, priority 1.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		Period:       100 * sim.Millisecond,
		Prio:         1,
		Etag:         can.MaxEtag, // highest etag reserved for sync
		Quantization: 1 * sim.Microsecond,
	}
}

// Syncer runs master-based clock synchronization over a CAN bus, in the
// style of Gergeleit/Streich [9]: a SYNC frame is timestamped by all nodes
// at its (bus-wide simultaneous) completion instant, then the master
// broadcasts its captured timestamp in a FOLLOW-UP frame; receivers apply
// the difference as a state correction.
type Syncer struct {
	K      *sim.Kernel
	Cfg    SyncConfig
	Bus    *can.Bus
	Master int // controller index of the acting time master

	clocks []*Clock
	seq    uint8
	rxTS   []map[uint8]sim.Time // per node: seq -> local rx timestamp

	// Rounds counts completed synchronization rounds; Takeovers counts
	// master failovers.
	Rounds    int
	Takeovers int

	// Down, if set, reports whether a station is currently crashed. A down
	// master emits nothing (its frames would pile up in a detached
	// controller), and a down backup is skipped in the failover ranking.
	Down func(int) bool

	// OnTakeover fires after a backup promotes itself to acting master.
	OnTakeover func(master int, at sim.Time)
	// OnHoldover fires when a follower enters (enter=true) or leaves
	// holdover: the explicit state between masters in which its clock
	// free-runs on its last rate with a growing uncertainty bound.
	OnHoldover func(node int, enter bool, at sim.Time)

	backups    []int // ranked backup masters (index 0 = first successor)
	lastWire   sim.Time
	lastAdj    []sim.Time // per node: kernel time of the last correction
	inHoldover []bool
	started    bool
}

// NewSyncer creates a synchronization service for the given clocks
// (indexed by controller index; clocks[Master] is the reference).
func NewSyncer(k *sim.Kernel, bus *can.Bus, cfg SyncConfig, master int, clocks []*Clock) *Syncer {
	s := &Syncer{K: k, Cfg: cfg, Bus: bus, Master: master, clocks: clocks}
	s.rxTS = make([]map[uint8]sim.Time, len(clocks))
	for i := range s.rxTS {
		s.rxTS[i] = make(map[uint8]sim.Time)
	}
	s.lastAdj = make([]sim.Time, len(clocks))
	s.inHoldover = make([]bool, len(clocks))
	return s
}

// SetBackups installs the ranked list of backup time masters. Rank r takes
// over after FailoverRounds+r missed rounds, so a dead first backup delays
// — never prevents — failover to the second.
func (s *Syncer) SetBackups(ranked []int) {
	s.backups = append([]int(nil), ranked...)
}

// Backups returns the ranked backup masters.
func (s *Syncer) Backups() []int { return s.backups }

// down reports whether a station is known-crashed.
func (s *Syncer) down(i int) bool { return s.Down != nil && s.Down(i) }

// Start schedules the periodic sync rounds and the failover/holdover
// watchdog. The first round fires immediately so that a freshly configured
// system converges before HRT traffic begins.
func (s *Syncer) Start() {
	if s.started {
		return
	}
	s.started = true
	var round func()
	round = func() {
		s.sendSync()
		s.K.After(s.Cfg.Period, round)
	}
	s.K.After(0, round)
	var watch func()
	watch = func() {
		s.sweep()
		s.K.After(s.Cfg.Period, watch)
	}
	s.K.After(s.Cfg.Period, watch)
}

// sendSync emits one SYNC frame and, once it completes on the wire, the
// FOLLOW-UP carrying the master's captured transmission timestamp. A dead
// or detached master emits nothing: the silence is what the backups and
// the holdover machinery detect.
func (s *Syncer) sendSync() {
	master := s.Master
	ctrl := s.Bus.Controller(master)
	if ctrl.Muted() || s.down(master) {
		return
	}
	s.seq++
	seq := s.seq
	sync := can.Frame{
		ID:   can.MakeID(s.Cfg.Prio, ctrl.Node(), s.Cfg.Etag),
		Data: []byte{packHeader(msgSync, seq)},
	}
	ctrl.Submit(sync, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
		if !ok {
			return
		}
		s.lastWire = at
		// The master timestamps the same completion instant the receivers
		// saw, with the same quantization.
		txLocal := s.stamp(master, at)
		fu := make([]byte, 8)
		fu[0] = packHeader(msgFollowUp, seq)
		putTS(fu[1:], txLocal)
		ctrl.Submit(can.Frame{
			ID:   can.MakeID(s.Cfg.Prio, ctrl.Node(), s.Cfg.Etag),
			Data: fu,
		}, can.SubmitOpts{})
	}})
}

// sweep is the once-per-period watchdog: it moves silent followers into
// holdover and promotes the highest-ranked live backup once the master has
// been silent past its rank's threshold.
func (s *Syncer) sweep() {
	now := s.K.Now()
	// Holdover entry: a follower that has seen no correction for more than
	// two sync periods can no longer assume the π precision bound.
	for i := range s.clocks {
		if i == s.Master || s.inHoldover[i] || s.down(i) || s.Bus.Controller(i).Muted() {
			continue // a crashed station is down, not in holdover
		}
		ref := s.lastAdj[i]
		if now-ref > 2*s.Cfg.Period {
			s.inHoldover[i] = true
			if s.OnHoldover != nil {
				s.OnHoldover(i, true, now)
			}
		}
	}
	// Failover: rank r of the backup list tolerates FailoverRounds+r
	// missed rounds. Ranks are checked best-first, so the takeover is
	// deterministic: the highest-ranked live backup always wins.
	silent := now - s.lastWire
	for r, b := range s.backups {
		if b == s.Master || s.down(b) || s.Bus.Controller(b).Muted() {
			continue
		}
		threshold := sim.Duration(s.Cfg.failoverRounds()+r) * s.Cfg.Period
		if silent > threshold {
			s.takeover(b, now)
		}
		return // lower ranks wait for this one's longer threshold
	}
}

// takeover promotes backup b to acting master. Its clock is stepped
// forward by the current holdover uncertainty so that every follower's
// first correction under the new master is non-negative: global time may
// jump forward across a master switch, but never backward.
func (s *Syncer) takeover(b int, now sim.Time) {
	step := s.Uncertainty(b, now)
	s.clocks[b].AdjustBy(now, step)
	s.Master = b
	s.Takeovers++
	s.lastWire = now
	s.lastAdj[b] = now
	if s.inHoldover[b] {
		s.inHoldover[b] = false
		if s.OnHoldover != nil {
			s.OnHoldover(b, false, now)
		}
	}
	if s.OnTakeover != nil {
		s.OnTakeover(b, now)
	}
	s.sendSync()
}

// stamp reads node i's local clock at true time at, with quantization
// noise.
func (s *Syncer) stamp(i int, at sim.Time) sim.Time {
	ts := s.clocks[i].Read(at)
	if q := s.Cfg.Quantization; q > 0 {
		ts += s.K.RNG().Jitter(q)
	}
	return ts
}

// HandleFrame processes a received sync-channel frame at receiver node.
// The core middleware (or a test harness) routes frames with the sync etag
// here.
func (s *Syncer) HandleFrame(node int, f can.Frame, at sim.Time) {
	if len(f.Data) < 1 || node == s.Master {
		return
	}
	seq := f.Data[0] & 0x0f
	switch f.Data[0] >> 4 {
	case msgSync:
		s.rxTS[node][seq] = s.stamp(node, at)
	case msgFollowUp:
		if len(f.Data) < 8 {
			return
		}
		rx, ok := s.rxTS[node][seq]
		if !ok {
			return
		}
		delete(s.rxTS[node], seq)
		masterTx := getTS(f.Data[1:])
		s.clocks[node].AdjustBy(at, masterTx-rx)
		s.lastAdj[node] = at
		if s.inHoldover[node] {
			s.inHoldover[node] = false
			if s.OnHoldover != nil {
				s.OnHoldover(node, false, at)
			}
		}
		if node == s.lastNonMaster() {
			s.Rounds++
		}
	}
}

// InHoldover reports whether a follower is currently in holdover.
func (s *Syncer) InHoldover(node int) bool { return s.inHoldover[node] }

// Uncertainty returns the worst-case bound on how far node's clock may
// currently be from any other synchronized clock: the steady-state
// precision π while corrections are flowing, growing by twice the maximum
// drift rate for every second past the expected correction period. The
// acting master is the time reference, but its distance to followers is
// still bounded by the same model (they drift from it symmetrically), so
// it reports the same bound anchored at the last wire round.
func (s *Syncer) Uncertainty(node int, now sim.Time) sim.Duration {
	ref := s.lastAdj[node]
	if node == s.Master {
		ref = s.lastWire
	}
	return HoldoverUncertainty(s.Cfg, now-ref)
}

// HoldoverUncertainty is the holdover model: elapsed time since the last
// correction maps to a pairwise clock uncertainty of
//
//	π + 2·d_max·max(0, elapsed − Period)
//
// — the steady-state precision bound while corrections arrive on schedule,
// then linear growth at the worst-case relative drift rate 2·d_max.
func HoldoverUncertainty(cfg SyncConfig, elapsed sim.Duration) sim.Duration {
	base := PrecisionBound(cfg, cfg.MaxDriftPPM)
	extra := elapsed - cfg.Period
	if extra <= 0 {
		return base
	}
	return base + sim.Duration(2*cfg.MaxDriftPPM*1e-6*float64(extra))
}

// lastNonMaster returns the highest node index that is not the master,
// used only to count completed rounds.
func (s *Syncer) lastNonMaster() int {
	for i := len(s.clocks) - 1; i >= 0; i-- {
		if i != s.Master {
			return i
		}
	}
	return s.Master
}

// PrecisionBound returns the analytical worst-case pairwise precision π
// for the given configuration and maximum absolute drift. Right after an
// adjustment each slave is within 2Q of the master's local time (one
// quantization error at the master stamp, one at the slave stamp), so two
// slaves differ by at most 4Q; between adjustments two slaves drift apart
// at a relative rate of at most 2·d_max, accumulating 2·d_max·Period. One
// extra microsecond absorbs second-order terms (follow-up latency times
// drift, rounding).
func PrecisionBound(cfg SyncConfig, maxDriftPPM float64) sim.Duration {
	driftPart := 2 * maxDriftPPM * 1e-6 * float64(cfg.Period)
	return 4*cfg.Quantization + sim.Duration(driftPart) + sim.Microsecond
}
