package clock

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// failoverCfg is a fast sync configuration for failover tests: 20 ms
// rounds, 2 missed rounds tolerated.
func failoverCfg(maxDriftPPM float64) SyncConfig {
	cfg := DefaultSyncConfig()
	cfg.Period = 20 * sim.Millisecond
	cfg.MaxDriftPPM = maxDriftPPM
	cfg.FailoverRounds = 2
	return cfg
}

// detach simulates a master crash at kernel time at.
func detach(k *sim.Kernel, bus *can.Bus, node int, at sim.Time) {
	k.At(at, func() { bus.Controller(node).Detach() })
}

// failoverRig is syncRig plus access to the bus for detaching stations.
func failoverRig(t *testing.T, n int, cfg SyncConfig, maxDriftPPM float64, seed uint64) (*sim.Kernel, *can.Bus, []*Clock, *Syncer) {
	t.Helper()
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	clocks := make([]*Clock, n)
	for i := 0; i < n; i++ {
		drift := (k.RNG().Float64()*2 - 1) * maxDriftPPM
		off := k.RNG().Jitter(500 * sim.Microsecond)
		clocks[i] = New(drift, off)
		bus.Attach(can.TxNode(i))
	}
	s := NewSyncer(k, bus, cfg, 0, clocks)
	for i := 0; i < n; i++ {
		i := i
		bus.Controller(i).OnReceive = func(f can.Frame, at sim.Time) {
			if f.ID.Etag() == cfg.Etag {
				s.HandleFrame(i, f, at)
			}
		}
	}
	return k, bus, clocks, s
}

// TestFailoverPromotesHighestRankedBackup: after the master falls silent,
// the rank-0 backup takes over within (FailoverRounds+1) periods plus one
// watchdog tick, and followers re-converge on the new master.
func TestFailoverPromotesHighestRankedBackup(t *testing.T) {
	cfg := failoverCfg(100)
	k, bus, clocks, s := failoverRig(t, 6, cfg, 100, 21)
	s.SetBackups([]int{3, 4})
	var takeAt sim.Time
	var takeMaster int
	s.OnTakeover = func(m int, at sim.Time) { takeMaster, takeAt = m, at }
	s.Start()

	kill := sim.Time(500 * sim.Millisecond)
	detach(k, bus, 0, kill)
	k.Run(2 * sim.Second)

	if s.Takeovers != 1 || s.Master != 3 {
		t.Fatalf("takeovers=%d master=%d, want 1 / 3", s.Takeovers, s.Master)
	}
	if takeMaster != 3 {
		t.Fatalf("OnTakeover master = %d, want 3", takeMaster)
	}
	window := sim.Duration(cfg.FailoverRounds+2) * cfg.Period
	if takeAt-kill > window {
		t.Fatalf("takeover %v after kill, want ≤ %v", takeAt-kill, window)
	}
	// Followers re-converged under the new master: pairwise skew within the
	// precision bound again.
	bound := PrecisionBound(cfg, 100)
	live := []*Clock{clocks[1], clocks[2], clocks[3], clocks[4], clocks[5]}
	if sk := MaxSkew(2*sim.Second, live); sk > bound {
		t.Fatalf("post-failover skew %v exceeds precision bound %v", sk, bound)
	}
}

// TestFailoverSkipsDeadBackup: with the first backup dead too, the second
// backup takes over after its (one round longer) threshold.
func TestFailoverSkipsDeadBackup(t *testing.T) {
	cfg := failoverCfg(100)
	k, bus, _, s := failoverRig(t, 6, cfg, 100, 22)
	s.SetBackups([]int{3, 4})
	s.Down = func(i int) bool { return i == 3 && k.Now() >= 500*sim.Millisecond }
	s.Start()

	detach(k, bus, 0, 500*sim.Millisecond)
	detach(k, bus, 3, 500*sim.Millisecond)
	k.Run(2 * sim.Second)

	if s.Takeovers != 1 || s.Master != 4 {
		t.Fatalf("takeovers=%d master=%d, want 1 / 4", s.Takeovers, s.Master)
	}
}

// TestHoldoverEntryAndExit: followers enter holdover after the master goes
// silent and leave it with the first correction from the new master.
func TestHoldoverEntryAndExit(t *testing.T) {
	cfg := failoverCfg(100)
	cfg.FailoverRounds = 5 // long window so holdover is observable first
	k, bus, _, s := failoverRig(t, 4, cfg, 100, 23)
	s.SetBackups([]int{2})
	enters := make(map[int]int)
	exits := make(map[int]int)
	s.OnHoldover = func(node int, enter bool, _ sim.Time) {
		if enter {
			enters[node]++
		} else {
			exits[node]++
		}
	}
	s.Start()

	kill := sim.Time(500 * sim.Millisecond)
	detach(k, bus, 0, kill)
	probe := kill + 4*cfg.Period
	k.Run(probe)
	for _, n := range []int{1, 2, 3} {
		if !s.InHoldover(n) {
			t.Fatalf("node %d not in holdover %v after master silence", n, 4*cfg.Period)
		}
	}
	// Uncertainty grows beyond the steady-state precision during holdover.
	if u := s.Uncertainty(1, probe); u <= PrecisionBound(cfg, cfg.MaxDriftPPM) {
		t.Fatalf("holdover uncertainty %v did not grow past the precision bound", u)
	}
	k.Run(2 * sim.Second)
	if s.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", s.Takeovers)
	}
	for _, n := range []int{1, 3} { // 2 became master; it exits via takeover
		if s.InHoldover(n) {
			t.Fatalf("node %d still in holdover after failover", n)
		}
		if enters[n] != 1 || exits[n] != 1 {
			t.Fatalf("node %d holdover enter/exit = %d/%d, want 1/1", n, enters[n], exits[n])
		}
	}
}

// TestNoBackwardStepAcrossTakeover: follower clocks never step backward
// across a master switch — the new master pre-steps its own clock by the
// holdover uncertainty, so every follower's first correction under it is
// forward. Quantization is disabled to make the property exact rather than
// statistical.
func TestNoBackwardStepAcrossTakeover(t *testing.T) {
	cfg := failoverCfg(100)
	cfg.Quantization = 0
	k, bus, clocks, s := failoverRig(t, 6, cfg, 100, 24)
	s.SetBackups([]int{3})
	s.Start()

	kill := sim.Time(500 * sim.Millisecond)
	detach(k, bus, 0, kill)
	// Sample every follower's local clock densely across the failover; any
	// backward step between consecutive samples is a violation.
	prev := make([]sim.Time, len(clocks))
	for at := kill - 10*sim.Millisecond; at <= kill+10*cfg.Period; at += 100 * sim.Microsecond {
		at := at
		k.At(at, func() {
			for i, c := range clocks {
				if i == 0 {
					continue
				}
				now := c.Read(k.Now())
				if now < prev[i] {
					t.Errorf("node %d local clock stepped backward at %v: %v -> %v", i, k.Now(), prev[i], now)
				}
				prev[i] = now
			}
		})
	}
	k.Run(2 * sim.Second)
	if s.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1 (failover never exercised)", s.Takeovers)
	}
}

// TestHoldoverUncertaintyModel pins the formula: flat at the precision
// bound through one period, then linear growth at 2·d_max.
func TestHoldoverUncertaintyModel(t *testing.T) {
	cfg := SyncConfig{Period: 100 * sim.Millisecond, Quantization: sim.Microsecond, MaxDriftPPM: 100}
	base := PrecisionBound(cfg, 100)
	if got := HoldoverUncertainty(cfg, 0); got != base {
		t.Fatalf("U(0) = %v, want %v", got, base)
	}
	if got := HoldoverUncertainty(cfg, cfg.Period); got != base {
		t.Fatalf("U(Period) = %v, want %v", got, base)
	}
	elapsed := cfg.Period + 500*sim.Millisecond
	// 2·d_max·(elapsed−Period) = 100 µs of extra uncertainty; the runtime
	// float product may truncate by up to 1 ns.
	want := base + sim.Duration(2*100e-6*float64(500*sim.Millisecond))
	if got := HoldoverUncertainty(cfg, elapsed); got < want-sim.Duration(1) || got > want {
		t.Fatalf("U(Period+500ms) = %v, want %v (±1ns)", got, want)
	}
}
