// Package clock models per-node drifting clocks and the master-based clock
// synchronization the paper's reservation scheme depends on (§3.2, refs
// [9][3]). HRT slot boundaries, the ΔG_min inter-slot gap and the
// delivery-at-deadline de-jittering are all defined against this global
// time base, so the achievable precision π directly bounds how tight the
// calendar may pack slots and how small application-visible jitter can get.
package clock

import (
	"math"

	"canec/internal/sim"
)

// Clock is a node-local clock with a constant rate error (drift). The
// local reading advances as
//
//	local(t) = lastLocal + (t − lastAdj) · (1 + drift)
//
// where lastAdj/lastLocal are updated by the synchronization protocol.
type Clock struct {
	drift     float64 // fractional rate error, e.g. 50e-6 for +50 ppm
	lastAdj   sim.Time
	lastLocal float64

	// watchers are notified after every state correction so that pending
	// local-time timers can re-arm; see ScheduleLocal.
	watchers map[int]func()
	nextW    int
}

// New returns a clock with the given drift (fractional, e.g. 100e-6 =
// 100 ppm fast) and an initial offset from true time.
func New(driftPPM float64, initialOffset sim.Duration) *Clock {
	return &Clock{
		drift:     driftPPM * 1e-6,
		lastLocal: float64(initialOffset),
	}
}

// DriftPPM returns the clock's rate error in parts per million.
func (c *Clock) DriftPPM() float64 { return c.drift * 1e6 }

// Read returns the local clock value at true (kernel) time now.
func (c *Clock) Read(now sim.Time) sim.Time {
	return sim.Time(math.Round(c.readf(now)))
}

func (c *Clock) readf(now sim.Time) float64 {
	return c.lastLocal + float64(now-c.lastAdj)*(1+c.drift)
}

// AdjustBy applies a state correction of delta local nanoseconds at true
// time now, folding the accumulated drift into the new baseline.
func (c *Clock) AdjustBy(now sim.Time, delta sim.Duration) {
	c.lastLocal = c.readf(now) + float64(delta)
	c.lastAdj = now
	c.notify()
}

// SetTo forces the local reading to value at true time now.
func (c *Clock) SetTo(now sim.Time, value sim.Time) {
	c.lastLocal = float64(value)
	c.lastAdj = now
	c.notify()
}

// watch registers fn to run after every adjustment; the returned function
// unregisters it.
func (c *Clock) watch(fn func()) (cancel func()) {
	if c.watchers == nil {
		c.watchers = make(map[int]func())
	}
	id := c.nextW
	c.nextW++
	c.watchers[id] = fn
	return func() { delete(c.watchers, id) }
}

// AfterNextAdjustment runs fn once, right after the next state correction
// applied to this clock. A rebooted node uses it to wait until the
// synchronization protocol has pulled its cold-booted clock back into the
// global time base before re-entering the calendar. The returned function
// cancels the wait.
func (c *Clock) AfterNextAdjustment(fn func()) (cancel func()) {
	var unwatch func()
	unwatch = c.watch(func() {
		unwatch()
		fn()
	})
	return unwatch
}

// notify runs the watchers registered at notification time; watchers
// added or removed by a callback take effect on the next adjustment.
func (c *Clock) notify() {
	if len(c.watchers) == 0 {
		return
	}
	fns := make([]func(), 0, len(c.watchers))
	for _, fn := range c.watchers {
		fns = append(fns, fn)
	}
	for _, fn := range fns {
		fn()
	}
}

// WhenLocal returns the true time at which the local clock will read
// local, assuming no further adjustments. If that instant is in the past
// relative to now, now is returned so callers can schedule immediately.
func (c *Clock) WhenLocal(now sim.Time, local sim.Time) sim.Time {
	t := float64(c.lastAdj) + (float64(local)-c.lastLocal)/(1+c.drift)
	tt := sim.Time(math.Ceil(t))
	if tt < now {
		return now
	}
	return tt
}

// OffsetAt returns local − true at the given true time: the clock's
// instantaneous error against the reference time base.
func (c *Clock) OffsetAt(now sim.Time) sim.Duration {
	return c.Read(now) - now
}

// MaxSkew returns the worst pairwise difference between local readings of
// the given clocks at true time now — the achieved precision π at that
// instant.
func MaxSkew(now sim.Time, clocks []*Clock) sim.Duration {
	if len(clocks) == 0 {
		return 0
	}
	lo, hi := clocks[0].Read(now), clocks[0].Read(now)
	for _, c := range clocks[1:] {
		v := c.Read(now)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// ScheduleLocal arms fn to run when clk reads local. Synchronization can
// adjust the clock between arming and firing in either direction: a
// backward correction makes the kernel timer fire early (it re-arms), and
// a forward correction would make it fire late, so the timer also watches
// the clock and re-arms immediately on every adjustment. The residual
// firing error is therefore bounded by the quantization of the clock, not
// by the correction step.
func ScheduleLocal(k *sim.Kernel, clk *Clock, local sim.Time, fn func()) {
	var timer sim.Timer
	var unwatch func()
	var arm func()
	fire := func() {
		if unwatch != nil {
			unwatch()
		}
		fn()
	}
	arm = func() {
		if clk.Read(k.Now()) >= local {
			fire()
			return
		}
		timer = k.At(clk.WhenLocal(k.Now(), local), arm)
	}
	unwatch = clk.watch(func() {
		// Re-evaluate the wake-up time under the corrected clock.
		k.Cancel(timer)
		arm()
	})
	arm()
}
