package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("lat", 0, 100, 10)
	for _, v := range []float64{5, 15, 15, 95, -3, 100, 250} {
		h.Observe(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 2 || h.Bucket(9) != 1 {
		t.Fatalf("buckets: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(9))
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range: %d/%d", under, over)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram("m", 0, 10, 5)
	for _, v := range []float64{2, 4, 6} {
		h.Observe(v)
	}
	if got := h.Mean(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if NewHistogram("e", 0, 1, 1).Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", 0, 1000, 100)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 1000
		if math.Abs(got-want) > 15 { // one bucket of tolerance
			t.Fatalf("Quantile(%v) = %v, want ≈%v", q, got, want)
		}
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		h := NewHistogram("p", 0, 100, 20)
		x := uint64(seed)
		n := int(nRaw)%200 + 1
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Observe(float64(x % 130)) // includes overflow
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram("jitter", 0, 40, 4)
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	h.Observe(15)
	h.Observe(999)
	out := h.Render()
	if !strings.Contains(out, "jitter: n=12") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "##") {
		t.Fatal("no bars rendered")
	}
	if !strings.Contains(out, "1 above") {
		t.Fatalf("overflow note missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 4 buckets + overflow
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestHistogramDegenerateConfig(t *testing.T) {
	h := NewHistogram("d", 5, 5, 0) // hi <= lo, 0 buckets: sanitised
	h.Observe(5)
	if h.N() != 1 {
		t.Fatal("sanitised histogram unusable")
	}
}
