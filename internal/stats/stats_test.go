package stats

import (
	"encoding/csv"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("lat")
	if s.Name() != "lat" {
		t.Fatal("name")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("N/Sum/Mean = %d/%v/%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 || s.Spread() != 4 {
		t.Fatalf("Min/Max/Spread = %v/%v/%v", s.Min(), s.Max(), s.Spread())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("e")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty series should answer zeros")
	}
}

func TestSeriesObserveAfterQuery(t *testing.T) {
	s := NewSeries("x")
	s.Observe(10)
	_ = s.Max() // forces sort
	s.Observe(1)
	if s.Min() != 1 {
		t.Fatal("observation after query lost ordering")
	}
}

func TestQuantile(t *testing.T) {
	s := NewSeries("q")
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	cases := map[float64]float64{0: 1, 0.5: 50, 0.95: 95, 0.99: 99, 1: 100}
	for q, want := range cases {
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSeries("p")
		for _, v := range vals {
			s.Observe(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Quantiles must be actual samples and monotone in q.
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			v := s.Quantile(q)
			idx := sort.SearchFloat64s(sorted, v)
			if idx >= len(sorted) || sorted[idx] != v {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStdDev(t *testing.T) {
	s := NewSeries("sd")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPeriodJitter(t *testing.T) {
	ts := []sim.Time{0, 100, 205, 298, 400}
	// Successive intervals: 100, 105, 93, 102 → deviations 0, 5, 7, 2.
	if got := PeriodJitter(ts, 100); got != 7 {
		t.Fatalf("PeriodJitter = %d, want 7", int64(got))
	}
	if PeriodJitter(nil, 100) != 0 || PeriodJitter(ts[:1], 100) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestFormatHelpers(t *testing.T) {
	if Micros(1500) != "1.50" {
		t.Fatalf("Micros = %q", Micros(1500))
	}
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
}

func TestTableString(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.Add(123, "x")
	tb.Add("yy", 4.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "T" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a    bbbb") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[3], "123") || !strings.Contains(lines[4], "4.5") {
		t.Fatalf("rows wrong: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.Add("x,y", `q"z`)
	out := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

// TestTableCSVQuoting round-trips cells with every special character
// through encoding/csv to prove the quoting is RFC 4180 compliant.
func TestTableCSVQuoting(t *testing.T) {
	rows := [][]string{
		{"plain", "with,comma", `with"quote`},
		{"multi\nline", `",mix\n"`, ""},
		{`""`, ",", "\n"},
	}
	tb := Table{Headers: []string{"h1", "h,2", `h"3`}}
	tb.Rows = rows
	got, err := csv.NewReader(strings.NewReader(tb.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	want := append([][]string{{"h1", "h,2", `h"3`}}, rows...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %q, want %q", got, want)
	}
}
