package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram aggregates samples into fixed-width buckets for distribution
// displays (latency spreads, jitter shapes) without retaining samples.
type Histogram struct {
	name   string
	lo, hi float64
	counts []uint64
	under  uint64
	over   uint64
	n      uint64
	sum    float64
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// equal-width buckets. Samples outside the range land in dedicated
// under/overflow counters.
func NewHistogram(name string, lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{name: name, lo: lo, hi: hi, counts: make([]uint64, buckets)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// N returns the total number of samples (including out-of-range).
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Sum returns the sum of all observed samples (including out-of-range).
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets returns the number of fixed-width buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// UpperBound returns the exclusive upper bound of bucket i.
func (h *Histogram) UpperBound(i int) float64 {
	return h.lo + float64(i+1)*(h.hi-h.lo)/float64(len(h.counts))
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket. Out-of-range mass is attributed to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.hi
}

// Render draws the distribution as one bar line per bucket:
//
//	0.0..100.0 | ######################                  1234
func (h *Histogram) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.2f\n", h.name, h.n, h.Mean())
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	const barW = 40
	for i, c := range h.counts {
		bar := 0
		if max > 0 {
			bar = int(math.Round(float64(c) / float64(max) * barW))
		}
		fmt.Fprintf(&b, "%10.1f..%-10.1f |%-*s| %d\n",
			h.lo+float64(i)*width, h.lo+float64(i+1)*width,
			barW, strings.Repeat("#", bar), c)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "out of range: %d below, %d above\n", h.under, h.over)
	}
	return b.String()
}
