package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// logSamples draws n samples log-uniformly across [min, max) so every
// bucket of a log histogram sees comparable mass.
func logSamples(r *rand.Rand, n int, min, max float64) []float64 {
	out := make([]float64, n)
	span := math.Log(max / min)
	for i := range out {
		out[i] = min * math.Exp(r.Float64()*span)
		if out[i] >= max {
			out[i] = max * (1 - 1e-12)
		}
	}
	return out
}

// TestLogHistogramBucketInvariant checks that every observed in-range
// sample lands in the bucket whose [lower, upper) span contains it,
// including values exactly on bucket boundaries.
func TestLogHistogramBucketInvariant(t *testing.T) {
	h := NewLogHistogram("inv", 1, 1e6, 30)
	for i := 0; i < h.Buckets(); i++ {
		lo := h.lowerBound(i)
		hi := h.UpperBound(i)
		before := h.Bucket(i)
		h.Observe(lo) // boundary value belongs to bucket i, not i-1
		mid := math.Sqrt(lo * hi)
		h.Observe(mid)
		if got := h.Bucket(i) - before; got != 2 {
			t.Fatalf("bucket %d [%g,%g): got %d new samples, want 2", i, lo, hi, got)
		}
	}
	under0, over0 := h.OutOfRange()
	h.Observe(0.5)
	h.Observe(1e6) // max itself is out of range (exclusive)
	under, over := h.OutOfRange()
	if under != under0+1 || over != over0+1 {
		t.Fatalf("out of range = (%d,%d), want (%d,%d)", under, over, under0+1, over0+1)
	}
}

// TestLogHistogramMergeExact is the merge property test: sharding a
// sample stream over k per-node histograms and merging must reproduce
// the single-histogram state exactly — identical counts and identical
// quantiles at every probe point — so fleet-wide merged quantiles keep
// the same rank-error bound as a single node's.
func TestLogHistogramMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n, shards = 20000, 7
	samples := logSamples(r, n, 10, 1e7)
	// A sprinkle of out-of-range mass must merge exactly too.
	samples = append(samples, 0.01, 0.5, 2e7, 5e8)

	single := NewLogHistogram("single", 10, 1e7, 48)
	parts := make([]*LogHistogram, shards)
	for i := range parts {
		parts[i] = NewLogHistogram("part", 10, 1e7, 48)
	}
	for i, v := range samples {
		single.Observe(v)
		parts[i%shards].Observe(v)
	}
	merged := NewLogHistogram("merged", 10, 1e7, 48)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	if merged.N() != single.N() {
		t.Fatalf("merged n=%d, single n=%d", merged.N(), single.N())
	}
	for i := 0; i < single.Buckets(); i++ {
		if merged.Bucket(i) != single.Bucket(i) {
			t.Fatalf("bucket %d: merged %d != single %d", i, merged.Bucket(i), single.Bucket(i))
		}
	}
	mu, mo := merged.OutOfRange()
	su, so := single.OutOfRange()
	if mu != su || mo != so {
		t.Fatalf("out of range: merged (%d,%d) != single (%d,%d)", mu, mo, su, so)
	}
	for q := 0.0; q <= 1.0; q += 0.001 {
		if mq, sq := merged.Quantile(q), single.Quantile(q); mq != sq {
			t.Fatalf("q=%.3f: merged %g != single %g", q, mq, sq)
		}
	}
}

// TestLogHistogramQuantileRankError checks the advertised accuracy
// bound: for in-range mass, the quantile estimate is within two growth
// factors of the exact sample quantile (the estimate and the true value
// can straddle adjacent buckets at rank boundaries, each bucket
// spanning one growth factor).
func TestLogHistogramQuantileRankError(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 50000
	samples := logSamples(r, n, 1, 1e6)
	h := NewLogHistogram("err", 1, 1e6, 60)
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	bound := h.Growth() * h.Growth() * (1 + 1e-9)
	for _, q := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(n))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := sorted[rank]
		est := h.Quantile(q)
		ratio := est / exact
		if ratio < 1/bound || ratio > bound {
			t.Errorf("q=%.3f: estimate %g vs exact %g (ratio %.4f, bound %.4f)",
				q, est, exact, ratio, bound)
		}
	}
}

// TestLogHistogramQuantileMonotone checks quantiles are non-decreasing
// in q, including across under/overflow mass.
func TestLogHistogramQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	h := NewLogHistogram("mono", 1, 1e4, 24)
	for _, v := range logSamples(r, 5000, 1, 1e4) {
		h.Observe(v)
	}
	for i := 0; i < 100; i++ { // out-of-range mass at both edges
		h.Observe(0.1)
		h.Observe(1e5)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.0005 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%.4f gives %g after %g", q, v, prev)
		}
		prev = v
	}
	if got := h.Quantile(0.0); got != h.Min() {
		t.Fatalf("q=0 with underflow mass: got %g, want min %g", got, h.Min())
	}
	if got := h.Quantile(1.0); got != h.Max() {
		t.Fatalf("q=1 with overflow mass: got %g, want max %g", got, h.Max())
	}
}

func TestLogHistogramMergeMismatch(t *testing.T) {
	a := NewLogHistogram("a", 1, 1e6, 30)
	for _, b := range []*LogHistogram{
		NewLogHistogram("b", 2, 1e6, 30),
		NewLogHistogram("b", 1, 1e5, 30),
		NewLogHistogram("b", 1, 1e6, 31),
	} {
		if err := a.Merge(b); err == nil {
			t.Fatalf("merge with layout [%g,%g)x%d should fail", b.Min(), b.Max(), b.Buckets())
		}
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
	if !a.Compatible(a.Clone()) {
		t.Fatal("clone should be merge-compatible")
	}
}

func TestLogHistogramEmptyAndClone(t *testing.T) {
	h := NewLogHistogram("e", 1, 100, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(10)
	c := h.Clone()
	c.Observe(20)
	if h.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: h.N=%d c.N=%d", h.N(), c.N())
	}
	if h.Mean() != 10 {
		t.Fatalf("mean = %g, want 10", h.Mean())
	}
}
