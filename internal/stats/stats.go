// Package stats provides the measurement primitives the experiment
// harness uses: streaming series with exact quantiles, jitter metrics,
// counters, and plain-text table rendering for reproducing the paper's
// evaluation as terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"canec/internal/sim"
)

// Series collects numeric samples (durations, counts) and answers summary
// queries. Samples are kept exactly; simulation experiments produce at
// most a few million samples, well within memory.
type Series struct {
	name    string
	samples []float64
	sorted  bool
	sum     float64
}

// NewSeries returns an empty series with a display name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the display name.
func (s *Series) Name() string { return s.name }

// Observe records one sample.
func (s *Series) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// ObserveDuration records a virtual-time duration in nanoseconds.
func (s *Series) ObserveDuration(d sim.Duration) { s.Observe(float64(d)) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the sum of samples.
func (s *Series) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples.
func (s *Series) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.samples[idx]
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Spread returns max − min: the peak-to-peak jitter measure used for
// latency and period jitter in the experiments.
func (s *Series) Spread() float64 { return s.Max() - s.Min() }

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// PeriodJitter derives the successive-difference series of event
// timestamps and reports its peak-to-peak deviation from the nominal
// period: the paper's period jitter for periodic HRT events.
func PeriodJitter(timestamps []sim.Time, period sim.Duration) (maxAbs sim.Duration) {
	for i := 1; i < len(timestamps); i++ {
		d := timestamps[i] - timestamps[i-1] - period
		if d < 0 {
			d = -d
		}
		if d > maxAbs {
			maxAbs = d
		}
	}
	return maxAbs
}

// Micros renders a nanosecond quantity as microseconds with two decimals.
func Micros(v float64) string { return fmt.Sprintf("%.2f", v/1000) }

// Pct renders a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Table renders experiment results as aligned plain text (and optionally
// CSV), matching how the harness regenerates the paper's evaluation.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b []byte
	if t.Title != "" {
		b = append(b, t.Title...)
		b = append(b, '\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, ' ', ' ')
			}
			b = append(b, c...)
			for p := len(c); p < widths[i]; p++ {
				b = append(b, ' ')
			}
		}
		b = append(b, '\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		for p := 0; p < widths[i]; p++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return string(b)
}

// CSV renders the table as comma-separated values. Cells containing
// commas, quotes or newlines are quoted per RFC 4180 (embedded quotes
// doubled).
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
