package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the q-quantile of sorted samples under the same
// rank convention Quantile targets (rank q·n, 1-indexed, clamped).
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// tailDistributions generates heavy-tailed deterministic sample sets:
// the regimes where P99/P99.9/P99.99 live in sparsely populated buckets
// and estimation error is at its worst.
func tailDistributions(r *rand.Rand, n int, min, max float64) map[string][]float64 {
	out := map[string][]float64{}
	// Log-uniform: every bucket equally loaded.
	out["loguniform"] = logSamples(r, n, min, max)
	// Lognormal latency shape: tight body, long tail.
	ln := make([]float64, n)
	med := min * math.Sqrt(max/min) / 50
	for i := range ln {
		v := med * math.Exp(r.NormFloat64()*1.2)
		if v < min {
			v = min
		}
		if v >= max {
			v = max * (1 - 1e-12)
		}
		ln[i] = v
	}
	out["lognormal"] = ln
	// Bimodal retransmission shape: a dominant fast mode plus a
	// geometric cascade of delayed modes, like CAN error recovery.
	bi := make([]float64, n)
	base, step := min*40, min*47
	for i := range bi {
		v := base + base*0.02*r.Float64()
		for r.Float64() < 0.03 {
			v += step
		}
		if v >= max {
			v = max * (1 - 1e-12)
		}
		bi[i] = v
	}
	out["bimodal"] = bi
	return out
}

// TestLogHistogramTailQuantileRankError: the estimate of the P99,
// P99.9 and P99.99 tail quantiles must stay within one Growth() factor
// of the exact sample quantile — the documented worst-case relative
// error — across heavy-tailed shapes and resolutions.
func TestLogHistogramTailQuantileRankError(t *testing.T) {
	r := rand.New(rand.NewSource(1701))
	const n = 200000
	const min, max = 1.0, 5e4
	for _, buckets := range []int{30, 50, 96} {
		for name, samples := range tailDistributions(r, n, min, max) {
			h := NewLogHistogram("tail", min, max, buckets)
			for _, v := range samples {
				h.Observe(v)
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			g := h.Growth()
			if want := math.Pow(max/min, 1/float64(buckets)); math.Abs(g-want) > 1e-9 {
				t.Fatalf("%s/%d: growth %v, want %v", name, buckets, g, want)
			}
			for _, q := range []float64{0.99, 0.999, 0.9999} {
				est := h.Quantile(q)
				exact := exactQuantile(sorted, q)
				if est < exact/g || est > exact*g {
					t.Errorf("%s buckets=%d q=%v: estimate %v outside [%v, %v] (exact %v, growth %v)",
						name, buckets, q, est, exact/g, exact*g, exact, g)
				}
			}
		}
	}
}

// TestLogHistogramTailQuantileMerged: merging per-node histograms must
// not widen the tail rank-error bound — merged quantiles obey the same
// Growth() band around the pooled samples' exact quantiles.
func TestLogHistogramTailQuantileMerged(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	const parts = 8
	const each = 20000
	const min, max = 1.0, 5e4
	merged := NewLogHistogram("merged", min, max, 50)
	var pool []float64
	for p := 0; p < parts; p++ {
		h := NewLogHistogram("part", min, max, 50)
		samples := logSamples(r, each, min, max)
		for _, v := range samples {
			h.Observe(v)
		}
		pool = append(pool, samples...)
		if err := merged.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(pool)
	g := merged.Growth()
	for _, q := range []float64{0.99, 0.999, 0.9999} {
		est := merged.Quantile(q)
		exact := exactQuantile(pool, q)
		if est < exact/g || est > exact*g {
			t.Fatalf("merged q=%v: estimate %v outside [%v, %v] (exact %v, growth %v)",
				q, est, exact/g, exact*g, exact, g)
		}
	}
}

// TestLogHistogramTailOverflowAttribution: tail quantiles whose rank
// falls into overflow mass must clamp to max, never invent a value
// beyond the tracked range.
func TestLogHistogramTailOverflowAttribution(t *testing.T) {
	h := NewLogHistogram("over", 1, 1000, 20)
	for i := 0; i < 990; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // overflow
	}
	if got := h.Quantile(0.9999); got != h.Max() {
		t.Fatalf("overflow-rank quantile %v, want max %v", got, h.Max())
	}
	if under, over := h.OutOfRange(); under != 0 || over != 10 {
		t.Fatalf("out of range (%d, %d), want (0, 10)", under, over)
	}
}
