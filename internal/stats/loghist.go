package stats

import (
	"fmt"
	"math"
)

// LogHistogram aggregates samples into geometrically growing buckets
// (HDR style). Every bucket spans the same multiplicative factor
// ("growth"), so the quantile estimate carries a bounded *relative*
// error of at most one growth factor regardless of where in the range
// the mass lands — the right shape for latency and jitter, where a
// 10 µs error matters at 50 µs but not at 50 ms.
//
// Two histograms built with the same (min, max, buckets) parameters
// share identical bucket boundaries, so Merge is exact count addition
// and merged quantiles equal the quantiles of the pooled samples'
// shared binning — per-node histograms can be combined fleet-wide
// without losing the rank-error bound.
type LogHistogram struct {
	name     string
	min, max float64
	growth   float64
	invLnG   float64
	bounds   []float64 // exclusive upper bound per bucket; bounds[last] == max
	counts   []uint64
	under    uint64
	over     uint64
	n        uint64
	sum      float64
}

// NewLogHistogram creates a histogram over [min, max) with the given
// number of geometric buckets: bucket i covers
// [min·g^i, min·g^(i+1)) where g = (max/min)^(1/buckets). min must be
// positive; non-positive or inverted parameters are clamped to a sane
// default rather than panicking.
func NewLogHistogram(name string, min, max float64, buckets int) *LogHistogram {
	if buckets < 1 {
		buckets = 1
	}
	if min <= 0 {
		min = 1
	}
	if max <= min {
		max = min * 2
	}
	g := math.Pow(max/min, 1/float64(buckets))
	h := &LogHistogram{
		name:   name,
		min:    min,
		max:    max,
		growth: g,
		invLnG: 1 / math.Log(g),
		bounds: make([]float64, buckets),
		counts: make([]uint64, buckets),
	}
	for i := range h.bounds {
		h.bounds[i] = min * math.Pow(g, float64(i+1))
	}
	h.bounds[buckets-1] = max // pin the top bound exactly despite float drift
	return h
}

func (h *LogHistogram) lowerBound(i int) float64 {
	if i == 0 {
		return h.min
	}
	return h.bounds[i-1]
}

// Observe records one sample. Samples below min land in the underflow
// counter (attributed to min by Quantile), samples at or above max in
// the overflow counter.
func (h *LogHistogram) Observe(v float64) {
	h.n++
	h.sum += v
	switch {
	case v < h.min:
		h.under++
	case v >= h.max:
		h.over++
	default:
		i := int(math.Log(v/h.min) * h.invLnG)
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		// Float drift in the log can land one bucket off; nudge so the
		// invariant lowerBound(i) <= v < bounds[i] holds exactly.
		for i+1 < len(h.counts) && v >= h.bounds[i] {
			i++
		}
		for i > 0 && v < h.lowerBound(i) {
			i--
		}
		h.counts[i]++
	}
}

// N returns the total number of samples (including out-of-range).
func (h *LogHistogram) N() uint64 { return h.n }

// Sum returns the sum of all observed samples (including out-of-range).
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean returns the sample mean.
func (h *LogHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Buckets returns the number of geometric buckets.
func (h *LogHistogram) Buckets() int { return len(h.counts) }

// Bucket returns the count of bucket i.
func (h *LogHistogram) Bucket(i int) uint64 { return h.counts[i] }

// UpperBound returns the exclusive upper bound of bucket i.
func (h *LogHistogram) UpperBound(i int) float64 { return h.bounds[i] }

// OutOfRange returns the underflow and overflow counts.
func (h *LogHistogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// Growth returns the per-bucket multiplicative factor — the worst-case
// relative error of a Quantile estimate for in-range mass.
func (h *LogHistogram) Growth() float64 { return h.growth }

// Min returns the inclusive lower edge of the tracked range.
func (h *LogHistogram) Min() float64 { return h.min }

// Max returns the exclusive upper edge of the tracked range.
func (h *LogHistogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile by geometric interpolation within
// the containing bucket, matching the buckets' multiplicative spacing.
// Underflow mass is attributed to min, overflow mass to max.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.min
	}
	for i, c := range h.counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			lo := h.lowerBound(i)
			frac := (target - cum) / float64(c)
			return lo * math.Pow(h.bounds[i]/lo, frac)
		}
		cum = next
	}
	return h.max
}

// Compatible reports whether o shares h's bucket layout, i.e. whether
// Merge would be exact.
func (h *LogHistogram) Compatible(o *LogHistogram) bool {
	return o != nil && h.min == o.min && h.max == o.max && len(h.counts) == len(o.counts)
}

// Merge adds o's counts into h. Both histograms must have been built
// with identical (min, max, buckets) parameters; merging is then exact
// (bucket-wise addition), so quantiles of the merged histogram equal
// quantiles of a single histogram fed all samples.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o == nil {
		return nil
	}
	if !h.Compatible(o) {
		return fmt.Errorf("stats: merge %q into %q: bucket layout mismatch ([%g,%g)x%d vs [%g,%g)x%d)",
			o.name, h.name, o.min, o.max, len(o.counts), h.min, h.max, len(h.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.n += o.n
	h.sum += o.sum
	return nil
}

// Clone returns an independent copy of h.
func (h *LogHistogram) Clone() *LogHistogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}
