package calendar

import (
	"strings"
	"testing"

	"canec/internal/sim"
)

func TestFormatReport(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := Plan(cfg, []Request{
		{Subject: 0x11, Publisher: 0, Payload: 8, Period: 5 * sim.Millisecond, Periodic: true},
		{Subject: 0x12, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := cal.Format()
	for _, want := range []string{"round 0.005000s", "periodic", "sporadic", "1/2 rounds", "ΔG_min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	// Timeline line present with both reserved and free columns.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	timeline := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			timeline = l
		}
	}
	if timeline == "" || !strings.Contains(timeline, "0") || !strings.Contains(timeline, ".") {
		t.Fatalf("timeline missing or empty: %q", timeline)
	}
}

func TestFormatSharedWindowMarker(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: 0, Payload: 8, Every: 2, Phase: 1})
	if err := cal.Admit(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cal.Format(), "#") {
		t.Fatal("phase-shared window not marked")
	}
}

func TestFormatEmptyCalendar(t *testing.T) {
	cal := New(0, DefaultConfig())
	if out := cal.Format(); !strings.Contains(out, "0 slots") {
		t.Fatalf("empty calendar format: %q", out)
	}
}
