package calendar

import (
	"strings"
	"testing"
	"testing/quick"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestWaitTimeDefault(t *testing.T) {
	cfg := DefaultConfig()
	// Worst-case 8-byte extended frame: 160 bit times at 1 Mbit/s.
	if got := cfg.WaitTime(); got != 160*sim.Microsecond {
		t.Fatalf("WaitTime = %v, want 160µs", got)
	}
	cfg.Wait = 154 * sim.Microsecond // the paper's figure
	if got := cfg.WaitTime(); got != 154*sim.Microsecond {
		t.Fatalf("WaitTime override = %v", got)
	}
}

func TestWCTTStructure(t *testing.T) {
	cfg := DefaultConfig()
	frame := can.BitTime(can.WorstCaseBits(8), can.DefaultBitRate)
	errf := can.BitTime(can.ErrorOverheadBits, can.DefaultBitRate)

	cfg.OmissionDegree = 0
	if got := cfg.WCTT(8); got != frame {
		t.Fatalf("WCTT(k=0) = %v, want %v", got, frame)
	}
	cfg.OmissionDegree = 2
	if got := cfg.WCTT(8); got != 3*frame+2*errf {
		t.Fatalf("WCTT(k=2) = %v, want %v", got, 3*frame+2*errf)
	}
}

func TestWCTTMonotone(t *testing.T) {
	f := func(k uint8, s uint8) bool {
		cfg := DefaultConfig()
		cfg.OmissionDegree = int(k % 5)
		size := int(s % 9)
		a := cfg.WCTT(size)
		cfg.OmissionDegree++
		b := cfg.WCTT(size)
		return b > a // more tolerated faults always cost more reserved time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotGeometry(t *testing.T) {
	cfg := DefaultConfig()
	s := Slot{Ready: 1000 * sim.Microsecond, Payload: 8}
	if s.LST(cfg) != s.Ready+cfg.WaitTime() {
		t.Fatal("LST != Ready + ΔT_wait")
	}
	if s.Deadline(cfg) != s.LST(cfg)+cfg.WCTT(8) {
		t.Fatal("Deadline != LST + WCTT")
	}
	if s.End(cfg) != s.Deadline(cfg) {
		t.Fatal("End != Deadline")
	}
}

func TestAdmitAcceptsValid(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	span := cfg.SlotSpan(8)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: span + cfg.GapMin, Payload: 8})
	if err := cal.Admit(); err != nil {
		t.Fatalf("valid calendar rejected: %v", err)
	}
}

func TestAdmitRejectsOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: 100 * sim.Microsecond, Payload: 8})
	err := cal.Admit()
	if err == nil {
		t.Fatal("overlapping slots admitted")
	}
	if !strings.Contains(err.Error(), "share rounds") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdmitRejectsMissingGap(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	span := cfg.SlotSpan(8)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	// Exactly adjacent but with gap one nanosecond short of ΔG_min.
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: span + cfg.GapMin - 1, Payload: 8})
	if cal.Admit() == nil {
		t.Fatal("sub-gap spacing admitted")
	}
}

func TestAdmitRejectsBeyondRound(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(100*sim.Microsecond, cfg) // far too short
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	if cal.Admit() == nil {
		t.Fatal("slot beyond round admitted")
	}
}

func TestAdmitRejectsWrapViolation(t *testing.T) {
	cfg := DefaultConfig()
	span := cfg.SlotSpan(8)
	// The second slot ends exactly at lastEnd = 2·span + gap; choosing the
	// round only gap/2 beyond that leaves too little room before the first
	// slot of the next round (which starts at offset 0).
	lastEnd := 2*span + cfg.GapMin
	round := lastEnd + cfg.GapMin/2
	cal := New(round, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: span + cfg.GapMin, Payload: 8})
	err := cal.Admit()
	if err == nil {
		t.Fatal("wrap-around violation admitted")
	}
	if !strings.Contains(err.Error(), "wrap") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdmitRejectsGapBelowPrecision(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GapMin = cfg.Precision - 1
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	err := cal.Admit()
	if err == nil {
		t.Fatal("gap below precision admitted")
	}
	if !strings.Contains(err.Error(), "precision") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdmitRejectsBadPayload(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 9})
	if cal.Admit() == nil {
		t.Fatal("9-byte payload admitted")
	}
	cal.Slots[0].Payload = -1
	if cal.Admit() == nil {
		t.Fatal("negative payload admitted")
	}
	cal.Slots[0] = Slot{Subject: 1, Publisher: 1, Ready: -1, Payload: 8}
	if cal.Admit() == nil {
		t.Fatal("negative ready offset admitted")
	}
}

func TestAdmitSortsSlots(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(20*sim.Millisecond, cfg)
	span := cfg.SlotSpan(8)
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: span + cfg.GapMin, Payload: 8})
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	if err := cal.Admit(); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if cal.Slots[0].Subject != 1 || cal.Slots[1].Subject != 2 {
		t.Fatal("Admit did not sort slots by ready offset")
	}
}

func TestPackSequential(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := PackSequential(cfg, sim.Millisecond,
		Slot{Subject: 1, Publisher: 1, Payload: 8},
		Slot{Subject: 2, Publisher: 2, Payload: 4},
		Slot{Subject: 3, Publisher: 3, Payload: 8},
	)
	if err != nil {
		t.Fatalf("PackSequential: %v", err)
	}
	if len(cal.Slots) != 3 {
		t.Fatalf("slots = %d", len(cal.Slots))
	}
	if cal.Round%sim.Millisecond != 0 {
		t.Fatalf("round %v not quantized", cal.Round)
	}
	if err := cal.Admit(); err != nil {
		t.Fatalf("packed calendar not admissible: %v", err)
	}
}

func TestPackSequentialProperty(t *testing.T) {
	// Any number of packed slots with any payloads must be admissible.
	f := func(payloads []uint8) bool {
		if len(payloads) > 12 {
			payloads = payloads[:12]
		}
		cfg := DefaultConfig()
		reqs := make([]Slot, len(payloads))
		for i, p := range payloads {
			reqs[i] = Slot{Subject: uint64(i), Publisher: can.TxNode(i), Payload: int(p % 9)}
		}
		cal, err := PackSequential(cfg, 0, reqs...)
		if err != nil {
			return false
		}
		return cal.Admit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	if cal.Utilization() != 0 {
		t.Fatal("empty calendar utilization != 0")
	}
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8})
	want := float64(cfg.SlotSpan(8)) / float64(10*sim.Millisecond)
	if got := cal.Utilization(); got != want {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	cal.Round = 0
	if cal.Utilization() != 0 {
		t.Fatal("zero-round utilization != 0")
	}
}

func TestSlotLookups(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := PackSequential(cfg, 0,
		Slot{Subject: 10, Publisher: 1, Payload: 8},
		Slot{Subject: 10, Publisher: 2, Payload: 8}, // second publisher, own slot
		Slot{Subject: 20, Publisher: 1, Payload: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.SlotsFor(1); len(got) != 2 {
		t.Fatalf("SlotsFor(1) = %d slots", len(got))
	}
	if got := cal.SlotsForSubject(10); len(got) != 2 {
		t.Fatalf("SlotsForSubject(10) = %d slots", len(got))
	}
	if got := cal.SlotsForSubject(99); len(got) != 0 {
		t.Fatalf("SlotsForSubject(99) = %d slots", len(got))
	}
}
