// Bus guardian: babbling-idiot containment for the HRT band.
//
// The calendar reserves exclusive windows for priority-0 (HRT) traffic, but
// nothing in plain CAN stops a faulty node from transmitting at priority 0
// whenever it likes — the classic babbling-idiot failure that TTP solves
// with an independent bus guardian per node. Guardian implements the same
// idea against this package's calendar: it vets every priority-0 frame
// before arbitration and mutes transmissions that do not fall inside a slot
// owned by the sending node.
package calendar

import (
	"canec/internal/can"
	"canec/internal/sim"
)

// Guardian is a calendar-aware can.Guardian. It allows every frame above
// the guarded priority band unconditionally (SRT/NRT/config traffic is
// arbitration-scheduled, not calendar-scheduled) and checks guarded frames
// against the static calendar: the frame's TxNode must own a slot that is
// active in the current round and whose reserved window (widened by Slack
// on both sides, absorbing clock-sync imprecision) contains the
// transmission instant.
//
// Each violation is muted (can.GuardMuteFrame). After Limit violations by
// the same controller the guardian escalates to node isolation
// (can.GuardMuteNode), the TTP-style response to a persistently babbling
// station. Limit 0 never isolates.
type Guardian struct {
	Cal *Calendar
	// Epoch is the global time of round 0's start (core.Middleware.Epoch).
	Epoch sim.Time
	// MaxGuardedPrio: frames with priority ≤ this value are vetted against
	// the calendar. The HRT band is priority 0, so the zero value guards
	// exactly the HRT band.
	MaxGuardedPrio int
	// Slack widens each slot window on both sides. Nodes schedule their
	// slots on drifting local clocks, so a legitimate transmission can miss
	// the global window by up to the sync precision π; zero selects the
	// calendar's ΔG_min, which Admit guarantees to cover π.
	Slack sim.Duration
	// LocalAt converts a kernel (global) transmission instant into the
	// synchronized timebase the calendar grid lives in. A hardware bus
	// guardian keeps its own synchronized clock; on a drifting-clock system
	// set this to the sync master's Clock.Read so Epoch and the observed
	// instant share a timebase. Nil means the two coincide (ideal clocks).
	LocalAt func(sim.Time) sim.Time
	// Limit is the per-node violation count that escalates frame muting to
	// node isolation. 0 disables escalation.
	Limit int
	// SlotTargetedLimit escalates faster for slot-timed violations: a
	// guarded frame whose instant falls inside a calendar window owned by a
	// *different* station is not a node babbling on its own drifting clock —
	// it is the timing signature of a bus-off attack, where the adversary
	// fires precisely into the victim's slots to corrupt its transmissions.
	// After this many slot-targeted violations the sender is isolated, even
	// if the generic Limit has not been reached. 0 disables the fast path.
	SlotTargetedLimit int

	violations   map[int]int
	slotTargeted map[int]int
}

// NewGuardian returns a guardian for the calendar with the paper-default
// policy: guard the HRT band (priority 0), ΔG_min slack, isolate a node
// after limit violations.
func NewGuardian(cal *Calendar, epoch sim.Time, limit int) *Guardian {
	return &Guardian{Cal: cal, Epoch: epoch, Limit: limit}
}

func (g *Guardian) slack() sim.Duration {
	if g.Slack > 0 {
		return g.Slack
	}
	return g.Cal.Cfg.GapMin
}

// Violations returns how many frames the guardian has muted for the given
// controller index.
func (g *Guardian) Violations(sender int) int { return g.violations[sender] }

// TargetedViolations returns how many of a controller's violations were
// slot-timed (inside another station's calendar window).
func (g *Guardian) TargetedViolations(sender int) int { return g.slotTargeted[sender] }

// Judge implements can.Guardian.
func (g *Guardian) Judge(f can.Frame, sender int, at sim.Time) can.GuardianVerdict {
	if int(f.ID.Prio()) > g.MaxGuardedPrio {
		return can.GuardAllow
	}
	if g.permitted(f, at) {
		return can.GuardAllow
	}
	if g.violations == nil {
		g.violations = make(map[int]int)
		g.slotTargeted = make(map[int]int)
	}
	g.violations[sender]++
	if g.inForeignSlot(f.ID.TxNode(), at) {
		g.slotTargeted[sender]++
		if g.SlotTargetedLimit > 0 && g.slotTargeted[sender] >= g.SlotTargetedLimit {
			return can.GuardMuteNode
		}
	}
	if g.Limit > 0 && g.violations[sender] >= g.Limit {
		return can.GuardMuteNode
	}
	return can.GuardMuteFrame
}

// permitted reports whether a guarded frame is inside a calendar window its
// sender owns. The transmission instant is global time while slots fire on
// local clocks, so the window is widened by the slack and the rounds
// adjacent to the nominal one are checked too (a slot near a round boundary
// can legitimately start just across it).
func (g *Guardian) permitted(f can.Frame, at sim.Time) bool {
	if g.Cal == nil || g.Cal.Round <= 0 {
		return false
	}
	if g.LocalAt != nil {
		at = g.LocalAt(at)
	}
	node := f.ID.TxNode()
	slack := g.slack()
	rel := at - g.Epoch
	nominal := int64(rel / sim.Duration(g.Cal.Round))
	if rel < 0 {
		nominal--
	}
	for _, s := range g.Cal.Slots {
		if s.Publisher != node {
			continue
		}
		for r := nominal - 1; r <= nominal+1; r++ {
			if r < 0 || !s.ActiveIn(r) {
				continue
			}
			start := g.Epoch + sim.Time(r)*sim.Time(g.Cal.Round) + sim.Time(s.Ready)
			end := g.Epoch + sim.Time(r)*sim.Time(g.Cal.Round) + sim.Time(s.End(g.Cal.Cfg))
			if at >= start-sim.Time(slack) && at <= end+sim.Time(slack) {
				return true
			}
		}
	}
	return false
}

// inForeignSlot reports whether the instant falls inside a calendar window
// owned by a station other than the sender — the slot-timed corruption
// signature the guardian escalates on. Same window arithmetic as permitted,
// with the ownership test inverted.
func (g *Guardian) inForeignSlot(sender can.TxNode, at sim.Time) bool {
	if g.Cal == nil || g.Cal.Round <= 0 {
		return false
	}
	if g.LocalAt != nil {
		at = g.LocalAt(at)
	}
	slack := g.slack()
	rel := at - g.Epoch
	nominal := int64(rel / sim.Duration(g.Cal.Round))
	if rel < 0 {
		nominal--
	}
	for _, s := range g.Cal.Slots {
		if s.Publisher == sender {
			continue
		}
		for r := nominal - 1; r <= nominal+1; r++ {
			if r < 0 || !s.ActiveIn(r) {
				continue
			}
			start := g.Epoch + sim.Time(r)*sim.Time(g.Cal.Round) + sim.Time(s.Ready)
			end := g.Epoch + sim.Time(r)*sim.Time(g.Cal.Round) + sim.Time(s.End(g.Cal.Cfg))
			if at >= start-sim.Time(slack) && at <= end+sim.Time(slack) {
				return true
			}
		}
	}
	return false
}
