package calendar

import (
	"fmt"
	"sort"

	"canec/internal/can"
	"canec/internal/sim"
)

// Request describes one hard real-time stream that needs a reservation.
// The paper assumes reservations "are made off-line" and checked by an
// admission test (§3.1); Plan is that off-line tool: it synthesises an
// admissible calendar from stream requirements.
type Request struct {
	Subject   uint64
	Publisher can.TxNode
	// Payload is the frame payload to dimension the slot for (includes
	// the middleware header byte; ≤ 8).
	Payload int
	// Period is the desired activation period. The planner quantises it
	// to a multiple of the base round, rounding *down* (the stream is
	// served at least as often as requested).
	Period sim.Duration
	// Periodic enables subscriber-side missing-message detection.
	Periodic bool
}

// Plan synthesises a calendar for the requests under cfg. The base round
// is the smallest requested period; slower streams activate every
// Period/round rounds and may share windows with phase-disjoint streams
// (CRT sharing). Placement is first-fit by increasing activation period.
// The result is guaranteed admissible (Admit is re-run before returning).
func Plan(cfg Config, reqs []Request) (*Calendar, error) {
	if len(reqs) == 0 {
		return nil, &AdmissionError{"no requests"}
	}
	round := reqs[0].Period
	for _, r := range reqs {
		if r.Period <= 0 {
			return nil, &AdmissionError{fmt.Sprintf("subject %d: non-positive period", r.Subject)}
		}
		if r.Payload < 0 || r.Payload > can.MaxPayload {
			return nil, &AdmissionError{fmt.Sprintf("subject %d: payload %d", r.Subject, r.Payload)}
		}
		if r.Period < round {
			round = r.Period
		}
	}
	cal := &Calendar{Round: round, Cfg: cfg}

	// Fastest (smallest Every) streams first: they are the hardest to
	// place because they conflict with every phase.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return reqs[order[a]].Period < reqs[order[b]].Period })

	for _, idx := range order {
		r := reqs[idx]
		every := int(r.Period / round)
		if every < 1 {
			every = 1
		}
		slot, ok := placeFirstFit(cal, cfg, r, every)
		if !ok {
			return nil, &AdmissionError{fmt.Sprintf(
				"subject %d (publisher %d) does not fit: %.1f%% already reserved in a %v round",
				r.Subject, r.Publisher, 100*cal.Utilization(), round)}
		}
		cal.Slots = append(cal.Slots, slot)
	}
	if err := cal.Admit(); err != nil {
		return nil, fmt.Errorf("planner produced inadmissible calendar (bug): %w", err)
	}
	return cal, nil
}

// placeFirstFit finds the earliest offset and a phase where the request's
// slot conflicts with nothing already placed.
func placeFirstFit(cal *Calendar, cfg Config, r Request, every int) (Slot, bool) {
	span := cfg.SlotSpan(r.Payload)
	// Candidate offsets: round start and just after each placed slot.
	cands := []sim.Duration{0}
	for _, s := range cal.Slots {
		cands = append(cands, s.End(cfg)+cfg.GapMin)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, off := range cands {
		if off+span > cal.Round {
			continue
		}
		for phase := 0; phase < every; phase++ {
			slot := Slot{
				Subject: r.Subject, Publisher: r.Publisher, Payload: r.Payload,
				Periodic: r.Periodic, Ready: off, Every: every, Phase: phase,
			}
			if !conflicts(cal, cfg, slot) {
				return slot, true
			}
		}
	}
	return Slot{}, false
}

// conflicts mirrors Admit's pairwise checks for one candidate against the
// placed slots.
func conflicts(cal *Calendar, cfg Config, s Slot) bool {
	for _, p := range cal.Slots {
		// Same-round overlap (either order).
		if roundsCoincide(s.every(), s.Phase, p.every(), p.Phase, 0) {
			if !(s.Ready >= p.End(cfg)+cfg.GapMin || p.Ready >= s.End(cfg)+cfg.GapMin) {
				return true
			}
		}
		// Wrap: s at round r end, p at round r+1 start.
		if roundsCoincide(s.every(), s.Phase, p.every(), p.Phase, 1) {
			if p.Ready+cal.Round < s.End(cfg)+cfg.GapMin {
				return true
			}
		}
		// Wrap: p at round r end, s at round r+1 start.
		if roundsCoincide(p.every(), p.Phase, s.every(), s.Phase, 1) {
			if s.Ready+cal.Round < p.End(cfg)+cfg.GapMin {
				return true
			}
		}
	}
	// Self wrap for Every == 1.
	if s.every() == 1 && s.Ready+cal.Round < s.End(cfg)+cfg.GapMin {
		return true
	}
	return false
}

// AchievedPeriod returns the effective activation period the planner gave
// a subject, or 0 if the subject has no slot.
func (c *Calendar) AchievedPeriod(subject uint64) sim.Duration {
	for _, s := range c.Slots {
		if s.Subject == subject {
			return s.Period(c.Round)
		}
	}
	return 0
}
