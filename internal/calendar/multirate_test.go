package calendar

import (
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

func TestSlotActivationPattern(t *testing.T) {
	s := Slot{Every: 3, Phase: 1}
	wantActive := map[int64]bool{1: true, 4: true, 7: true}
	for r := int64(0); r < 9; r++ {
		if s.ActiveIn(r) != wantActive[r] {
			t.Fatalf("ActiveIn(%d) = %v", r, s.ActiveIn(r))
		}
	}
	if s.NextActive(0) != 1 || s.NextActive(1) != 1 || s.NextActive(2) != 4 || s.NextActive(5) != 7 {
		t.Fatalf("NextActive wrong: %d %d %d %d",
			s.NextActive(0), s.NextActive(1), s.NextActive(2), s.NextActive(5))
	}
	// Default Every: every round.
	d := Slot{}
	for r := int64(0); r < 4; r++ {
		if !d.ActiveIn(r) || d.NextActive(r) != r {
			t.Fatal("default slot must be active every round")
		}
	}
}

func TestSlotPeriod(t *testing.T) {
	s := Slot{Every: 4}
	if s.Period(10*sim.Millisecond) != 40*sim.Millisecond {
		t.Fatalf("Period = %v", s.Period(10*sim.Millisecond))
	}
}

func TestRoundsCoincideCRT(t *testing.T) {
	cases := []struct {
		ea, pa, eb, pb, shift int
		want                  bool
	}{
		{2, 0, 2, 1, 0, false}, // even vs odd rounds: disjoint
		{2, 0, 2, 0, 0, true},
		{2, 0, 4, 1, 0, false}, // gcd 2: 0 vs 1 mod 2
		{2, 0, 4, 2, 0, true},  // 0 ≡ 2 (mod 2)
		{3, 1, 5, 2, 0, true},  // gcd 1: always coincide
		{2, 1, 2, 0, 1, true},  // shift: odd rounds then even next round
		{4, 3, 4, 0, 1, true},  // r=3 active, r+1=4 ≡ 0 (mod 4)
		{4, 2, 4, 0, 1, false},
	}
	for _, c := range cases {
		if got := roundsCoincide(c.ea, c.pa, c.eb, c.pb, c.shift); got != c.want {
			t.Errorf("roundsCoincide(%v) = %v, want %v", c, got, c.want)
		}
	}
}

func TestAdmitAllowsPhaseDisjointSharing(t *testing.T) {
	// Two slots occupying the SAME window of alternating rounds: legal,
	// because they are never active together.
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: 0, Payload: 8, Every: 2, Phase: 1})
	if err := cal.Admit(); err != nil {
		t.Fatalf("phase-disjoint sharing rejected: %v", err)
	}
	// Same phases: rejected.
	cal2 := New(10*sim.Millisecond, cfg)
	cal2.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	cal2.Add(Slot{Subject: 2, Publisher: 2, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	if cal2.Admit() == nil {
		t.Fatal("same-phase overlap admitted")
	}
	// gcd-coinciding phases: Every 2/4 with phases 0/2 collide.
	cal3 := New(10*sim.Millisecond, cfg)
	cal3.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	cal3.Add(Slot{Subject: 2, Publisher: 2, Ready: 0, Payload: 8, Every: 4, Phase: 2})
	if cal3.Admit() == nil {
		t.Fatal("gcd-coinciding overlap admitted")
	}
}

func TestAdmitRejectsBadPhase(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Payload: 8, Every: 2, Phase: 2})
	if cal.Admit() == nil {
		t.Fatal("phase ≥ Every admitted")
	}
	cal.Slots[0].Phase = -1
	if cal.Admit() == nil {
		t.Fatal("negative phase admitted")
	}
}

func TestAdmitWrapWithPhases(t *testing.T) {
	cfg := DefaultConfig()
	span := cfg.SlotSpan(8)
	// Slot A at the very end of even rounds; slot B at offset 0 of odd
	// rounds: A's end wraps into B's start — must be rejected.
	round := span + cfg.GapMin/2 // too tight for the wrap
	cal := New(round, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	cal.Add(Slot{Subject: 2, Publisher: 2, Ready: 0, Payload: 8, Every: 2, Phase: 1})
	if cal.Admit() == nil {
		t.Fatal("wrap violation between alternating slots admitted")
	}
	// With a round long enough the same calendar admits.
	cal.Round = span + cfg.GapMin
	if err := cal.Admit(); err != nil {
		t.Fatalf("valid alternating calendar rejected: %v", err)
	}
}

func TestUtilizationMultiRate(t *testing.T) {
	cfg := DefaultConfig()
	cal := New(10*sim.Millisecond, cfg)
	cal.Add(Slot{Subject: 1, Publisher: 1, Ready: 0, Payload: 8, Every: 2, Phase: 0})
	want := float64(cfg.SlotSpan(8)) / float64(10*sim.Millisecond) / 2
	if got := cal.Utilization(); got != want {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
}

func TestNextActiveProperty(t *testing.T) {
	f := func(everyRaw, phaseRaw uint8, fromRaw uint16) bool {
		every := int(everyRaw%8) + 1
		phase := int(phaseRaw) % every
		from := int64(fromRaw)
		s := Slot{Every: every, Phase: phase}
		r := s.NextActive(from)
		if r < from || !s.ActiveIn(r) {
			return false
		}
		// No active round in (from, r).
		for q := from; q < r; q++ {
			if s.ActiveIn(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
