package calendar

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

func guardianFixture(t *testing.T, limit int) (*Guardian, Slot) {
	t.Helper()
	cfg := DefaultConfig()
	cal, err := PackSequential(cfg, sim.Millisecond,
		Slot{Subject: 1, Etag: 10, Publisher: 2, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewGuardian(cal, sim.Time(500*sim.Microsecond), limit), cal.Slots[0]
}

func TestGuardianAllowsScheduledTraffic(t *testing.T) {
	g, s := guardianFixture(t, 0)
	cal := g.Cal
	owned := can.Frame{ID: can.MakeID(0, 2, 10)}

	// Inside the slot window of round 0 and of a later round.
	for _, r := range []int64{0, 5} {
		at := g.Epoch + sim.Time(r)*sim.Time(cal.Round) + sim.Time(s.LST(cal.Cfg))
		if v := g.Judge(owned, 2, at); v != can.GuardAllow {
			t.Fatalf("round %d: verdict %v, want allow", r, v)
		}
	}
	// Slack: local clocks may start the frame slightly before the global
	// window opens.
	early := g.Epoch + sim.Time(s.Ready) - sim.Time(cal.Cfg.GapMin)/2
	if v := g.Judge(owned, 2, early); v != can.GuardAllow {
		t.Fatalf("within slack: verdict %v, want allow", v)
	}
	// Non-HRT priorities are never vetted, wherever they occur.
	srt := can.Frame{ID: can.MakeID(100, 5, 77)}
	if v := g.Judge(srt, 5, g.Epoch+sim.Time(cal.Round)/2); v != can.GuardAllow {
		t.Fatalf("SRT frame: verdict %v, want allow", v)
	}
	if g.Violations(2) != 0 || g.Violations(5) != 0 {
		t.Fatal("legitimate traffic counted as violations")
	}
}

func TestGuardianMutesCalendarViolations(t *testing.T) {
	g, s := guardianFixture(t, 0)
	cal := g.Cal
	inWindow := g.Epoch + sim.Time(s.LST(cal.Cfg))
	outside := g.Epoch + sim.Time(cal.Round) - sim.Time(50*sim.Microsecond)

	// Right slot owner, wrong time.
	if v := g.Judge(can.Frame{ID: can.MakeID(0, 2, 10)}, 2, outside); v != can.GuardMuteFrame {
		t.Fatalf("outside window: verdict %v, want mute", v)
	}
	// Right time, node without any slot (the babbling idiot).
	if v := g.Judge(can.Frame{ID: can.MakeID(0, 3, 10)}, 3, inWindow); v != can.GuardMuteFrame {
		t.Fatalf("slotless node: verdict %v, want mute", v)
	}
	if g.Violations(2) != 1 || g.Violations(3) != 1 {
		t.Fatalf("violations = %d/%d, want 1/1", g.Violations(2), g.Violations(3))
	}
}

func TestGuardianEscalatesToIsolation(t *testing.T) {
	g, _ := guardianFixture(t, 3)
	cal := g.Cal
	babble := can.Frame{ID: can.MakeID(0, 3, 99)}
	outside := g.Epoch + sim.Time(cal.Round) - sim.Time(50*sim.Microsecond)

	for i := 1; i <= 2; i++ {
		if v := g.Judge(babble, 3, outside); v != can.GuardMuteFrame {
			t.Fatalf("violation %d: verdict %v, want frame mute", i, v)
		}
	}
	if v := g.Judge(babble, 3, outside); v != can.GuardMuteNode {
		t.Fatalf("violation 3: verdict %v, want node isolation", v)
	}
	if g.Violations(3) != 3 {
		t.Fatalf("violations = %d, want 3", g.Violations(3))
	}
}

func TestGuardianSlotTargetedFastPath(t *testing.T) {
	g, s := guardianFixture(t, 100) // generic limit far away
	g.SlotTargetedLimit = 2
	cal := g.Cal
	inWindow := g.Epoch + sim.Time(s.LST(cal.Cfg))
	outside := g.Epoch + sim.Time(cal.Round) - sim.Time(50*sim.Microsecond)
	attack := can.Frame{ID: can.MakeID(0, 8, 99)}

	// A violation inside the victim's window carries the bus-off-attack
	// timing signature: counted separately, escalated after 2 hits even
	// though the generic limit (100) is nowhere near.
	if v := g.Judge(attack, 8, inWindow); v != can.GuardMuteFrame {
		t.Fatalf("targeted violation 1: verdict %v, want frame mute", v)
	}
	if g.TargetedViolations(8) != 1 || g.Violations(8) != 1 {
		t.Fatalf("counts = %d targeted / %d total, want 1/1",
			g.TargetedViolations(8), g.Violations(8))
	}
	at2 := inWindow + sim.Time(cal.Round)
	if v := g.Judge(attack, 8, at2); v != can.GuardMuteNode {
		t.Fatalf("targeted violation 2: verdict %v, want node isolation", v)
	}

	// A plain babbler outside every window never trips the fast path.
	babble := can.Frame{ID: can.MakeID(0, 3, 77)}
	for i := 0; i < 5; i++ {
		if v := g.Judge(babble, 3, outside); v != can.GuardMuteFrame {
			t.Fatalf("untargeted violation %d: verdict %v, want frame mute", i+1, v)
		}
	}
	if g.TargetedViolations(3) != 0 || g.Violations(3) != 5 {
		t.Fatalf("babbler counts = %d targeted / %d total, want 0/5",
			g.TargetedViolations(3), g.Violations(3))
	}

	// SlotTargetedLimit 0 disables the fast path: slot-timed hits still
	// count but only the generic limit isolates.
	g2, s2 := guardianFixture(t, 0)
	in2 := g2.Epoch + sim.Time(s2.LST(g2.Cal.Cfg))
	for i := 0; i < 4; i++ {
		if v := g2.Judge(attack, 8, in2+sim.Time(int64(i)*int64(g2.Cal.Round))); v != can.GuardMuteFrame {
			t.Fatalf("fast path disabled, hit %d: verdict %v, want frame mute", i+1, v)
		}
	}
	if g2.TargetedViolations(8) != 4 {
		t.Fatalf("targeted count with fast path off = %d, want 4", g2.TargetedViolations(8))
	}
}

func TestGuardianRespectsMultiRatePhases(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := PackSequential(cfg, sim.Millisecond,
		Slot{Subject: 1, Etag: 10, Publisher: 2, Payload: 8, Every: 2, Phase: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuardian(cal, 0, 0)
	s := cal.Slots[0]
	f := can.Frame{ID: can.MakeID(0, 2, 10)}

	// Round 0 is not in the slot's phase; round 1 is.
	at0 := sim.Time(s.LST(cfg))
	at1 := sim.Time(cal.Round) + sim.Time(s.LST(cfg))
	if v := g.Judge(f, 2, at0); v != can.GuardMuteFrame {
		t.Fatalf("inactive round: verdict %v, want mute", v)
	}
	if v := g.Judge(f, 2, at1); v != can.GuardAllow {
		t.Fatalf("active round: verdict %v, want allow", v)
	}
}
