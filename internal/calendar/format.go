package calendar

import (
	"fmt"
	"strings"

	"canec/internal/sim"
)

// Format renders the calendar as a human-readable report: one line per
// slot with its Fig. 3 geometry, plus an ASCII timeline of one round
// (multi-rate slots annotated with their activation pattern).
func (c *Calendar) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "round %v, %d slots, %.1f%% of bandwidth reserved, ΔG_min %v, ΔT_wait %v, omission degree %d\n",
		c.Round, len(c.Slots), 100*c.Utilization(), c.Cfg.GapMin, c.Cfg.WaitTime(), c.Cfg.OmissionDegree)
	fmt.Fprintf(&b, "%-4s %-8s %-5s %-4s %-10s %-10s %-10s %-9s %s\n",
		"slot", "subject", "node", "dlc", "ready µs", "LST µs", "deadline µs", "period", "kind")
	for i, s := range c.Slots {
		kind := "sporadic"
		if s.Periodic {
			kind = "periodic"
		}
		period := "1/round"
		if s.every() > 1 {
			period = fmt.Sprintf("1/%d rounds (phase %d)", s.every(), s.Phase)
		}
		fmt.Fprintf(&b, "%-4d %-8d %-5d %-4d %-10d %-10d %-10d %-9s %s\n",
			i, s.Subject, s.Publisher, s.Payload,
			s.Ready.Micros(), s.LST(c.Cfg).Micros(), s.Deadline(c.Cfg).Micros(),
			period, kind)
	}
	b.WriteString(c.timeline())
	return b.String()
}

// timeline draws one round as a fixed-width bar: digits mark the slot
// occupying each column, '.' is unreserved.
func (c *Calendar) timeline() string {
	const width = 72
	if c.Round <= 0 {
		return ""
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = '.'
	}
	col := func(t sim.Duration) int {
		p := int(int64(t) * int64(width) / int64(c.Round))
		if p >= width {
			p = width - 1
		}
		if p < 0 {
			p = 0
		}
		return p
	}
	for i, s := range c.Slots {
		mark := byte('0' + i%10)
		for p := col(s.Ready); p <= col(s.End(c.Cfg)); p++ {
			if row[p] == '.' {
				row[p] = mark
			} else if row[p] != mark {
				row[p] = '#' // phase-shared window
			}
		}
	}
	return fmt.Sprintf("|%s|  ('.' free, digits reserved, '#' phase-shared)\n", row)
}
