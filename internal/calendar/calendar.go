// Package calendar implements the reservation scheme for hard real-time
// event channels (paper §3.1–3.2): communication organised in rounds, a
// calendar of time slots (the analogue of TTP's Round Descriptor List),
// the slot geometry of Fig. 3 (latest-ready time, Latest Start Time,
// delivery deadline, ΔT_wait extension and ΔG_min gap), worst-case
// transmission times under an omission-fault assumption, and the off-line
// admission test that validates a calendar before it is deployed.
package calendar

import (
	"fmt"
	"sort"

	"canec/internal/can"
	"canec/internal/sim"
)

// Config carries the bus- and fault-model parameters the slot geometry
// depends on.
type Config struct {
	// BitRate of the bus (bits/s); 0 selects can.DefaultBitRate.
	BitRate int
	// GapMin is the minimal gap ΔG_min between adjacent hard real-time
	// slots, absorbing clock-sync imprecision. The paper conservatively
	// assumes 40 µs.
	GapMin sim.Duration
	// Wait is ΔT_wait: the time a just-started non-preemptable lower
	// priority frame can occupy the bus past the latest-ready instant.
	// Zero selects the worst-case 8-byte extended frame (160 bit times;
	// the paper quotes 154 µs under a milder stuffing assumption).
	Wait sim.Duration
	// OmissionDegree is the number k of consistent transmission faults a
	// hard real-time slot must absorb: the slot is dimensioned for k+1
	// transmission attempts plus k error-signalling overheads.
	OmissionDegree int
	// Precision is the clock synchronization precision π; delivery
	// deadlines must respect it. Used by the admission test to check
	// GapMin is sufficient.
	Precision sim.Duration
}

// DefaultConfig returns the paper's parameters: 1 Mbit/s, ΔG_min = 40 µs,
// worst-case ΔT_wait, omission degree 1.
func DefaultConfig() Config {
	return Config{
		BitRate:        can.DefaultBitRate,
		GapMin:         40 * sim.Microsecond,
		OmissionDegree: 1,
		Precision:      25 * sim.Microsecond,
	}
}

func (c Config) bitRate() int {
	if c.BitRate <= 0 {
		return can.DefaultBitRate
	}
	return c.BitRate
}

// WaitTime returns ΔT_wait for this configuration.
func (c Config) WaitTime() sim.Duration {
	if c.Wait > 0 {
		return c.Wait
	}
	return can.BitTime(can.WorstCaseBits(can.MaxPayload), c.bitRate())
}

// WCTT returns the worst-case transmission time for a payload of s bytes
// under the configured omission degree k: k+1 back-to-back worst-case
// transmissions, each failed attempt followed by error-frame signalling.
// This is the closed-form structure analysed in Livani/Kaiser [16].
func (c Config) WCTT(s int) sim.Duration {
	k := c.OmissionDegree
	frame := can.BitTime(can.WorstCaseBits(s), c.bitRate())
	errf := can.BitTime(can.ErrorOverheadBits, c.bitRate())
	return sim.Duration(k+1)*frame + sim.Duration(k)*errf
}

// SlotSpan returns the total reserved span of a slot for a payload of s
// bytes: ΔT_wait (blocking by a just-started lower-priority frame) plus
// the worst-case transmission time.
func (c Config) SlotSpan(s int) sim.Duration {
	return c.WaitTime() + c.WCTT(s)
}

// Slot is one reserved transmission window inside a round. Offsets are
// relative to the round start, in global (synchronized) time.
type Slot struct {
	// Subject identifies the event channel this slot carries.
	Subject uint64
	// Etag is the bound network tag for the subject.
	Etag can.Etag
	// Publisher is the only node allowed to transmit in this slot. If
	// multiple publishers feed one channel, each needs its own slot
	// (paper §3.1).
	Publisher can.TxNode
	// Ready is the latest-ready offset: the instant the message must be
	// available in the controller (start of the reserved span, Fig. 3).
	Ready sim.Duration
	// Payload is the slot's dimensioned payload size in bytes (≤ 8).
	Payload int
	// Periodic marks slots fed by periodic publications; sporadic slots
	// may stay unused, in which case CAN arbitration reclaims the
	// bandwidth automatically.
	Periodic bool
	// Every and Phase extend the schedule across rounds for channels
	// whose period is a multiple of the round (the cluster-cycle
	// generalisation of TTP's RODLs): the slot is active only in rounds r
	// with r ≡ Phase (mod Every). Every ≤ 1 means every round.
	Every int
	Phase int
}

// every normalises the Every field.
func (s Slot) every() int {
	if s.Every < 1 {
		return 1
	}
	return s.Every
}

// ActiveIn reports whether the slot is active in the given round.
func (s Slot) ActiveIn(round int64) bool {
	e := int64(s.every())
	return (round%e+e)%e == int64(s.Phase)
}

// NextActive returns the smallest active round ≥ from.
func (s Slot) NextActive(from int64) int64 {
	e := int64(s.every())
	r := from + ((int64(s.Phase)-from)%e+e)%e
	return r
}

// Period returns the slot's activation period in time units, given the
// round length.
func (s Slot) Period(round sim.Duration) sim.Duration {
	return sim.Duration(s.every()) * round
}

// LST returns the Latest Start Time offset of the slot: the instant the
// frame is guaranteed to win arbitration, Ready + ΔT_wait.
func (s Slot) LST(cfg Config) sim.Duration { return s.Ready + cfg.WaitTime() }

// Deadline returns the delivery-deadline offset: LST plus the worst-case
// transmission time. The middleware delivers the event to subscribers
// exactly at this offset to cancel network-level jitter.
func (s Slot) Deadline(cfg Config) sim.Duration { return s.LST(cfg) + cfg.WCTT(s.Payload) }

// End returns the end of the reserved span (same as Deadline; kept
// separate for readability at call sites).
func (s Slot) End(cfg Config) sim.Duration { return s.Deadline(cfg) }

// Calendar is the static schedule of one round: the analogue of the Round
// Descriptor List. Calendars are built off-line, validated by Admit, and
// then distributed to every node.
type Calendar struct {
	// Round is the cycle length after which the schedule repeats.
	Round sim.Duration
	// Slots, sorted by Ready offset after a successful Admit.
	Slots []Slot
	// Cfg is the configuration the calendar was validated against.
	Cfg Config
}

// New returns an empty calendar with the given round length.
func New(round sim.Duration, cfg Config) *Calendar {
	return &Calendar{Round: round, Cfg: cfg}
}

// Add appends a slot (unvalidated; call Admit before use).
func (c *Calendar) Add(s Slot) { c.Slots = append(c.Slots, s) }

// AdmissionError describes why a calendar was rejected.
type AdmissionError struct {
	Reason string
}

func (e *AdmissionError) Error() string { return "calendar: " + e.Reason }

// gcd returns the greatest common divisor of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// roundsCoincide reports whether two activation patterns r ≡ pa (mod ea)
// and r+shift ≡ pb (mod eb) share a solution: by the Chinese remainder
// theorem this holds iff pa ≡ pb − shift (mod gcd(ea, eb)).
func roundsCoincide(ea, pa, eb, pb, shift int) bool {
	g := gcd(ea, eb)
	return ((pa-pb+shift)%g+g)%g == 0
}

// Admit validates the calendar off-line, as the paper assumes (§3.1):
// slots must fit in the round, slots that can be active in the same round
// must not overlap and must keep at least ΔG_min between them (which
// itself must cover the clock precision π), and the wrap into the next
// round is checked for every round-coinciding pair. Multi-rate slots
// (Every > 1) may share the same window as long as their phase patterns
// never activate in the same round. On success the slots are left sorted
// by Ready offset.
func (c *Calendar) Admit() error {
	cfg := c.Cfg
	if cfg.GapMin < cfg.Precision {
		return &AdmissionError{fmt.Sprintf(
			"gap ΔG_min %v below clock precision π %v: adjacent slots can overlap in real time",
			cfg.GapMin, cfg.Precision)}
	}
	sort.SliceStable(c.Slots, func(i, j int) bool { return c.Slots[i].Ready < c.Slots[j].Ready })
	for i, s := range c.Slots {
		if s.Payload < 0 || s.Payload > can.MaxPayload {
			return &AdmissionError{fmt.Sprintf("slot %d payload %d out of range", i, s.Payload)}
		}
		if s.Ready < 0 {
			return &AdmissionError{fmt.Sprintf("slot %d ready offset negative", i)}
		}
		if s.End(cfg) > c.Round {
			return &AdmissionError{fmt.Sprintf(
				"slot %d (subject %d) ends at %v beyond round %v",
				i, s.Subject, s.End(cfg), c.Round)}
		}
		if s.Phase < 0 || s.Phase >= s.every() {
			return &AdmissionError{fmt.Sprintf(
				"slot %d phase %d outside [0, %d)", i, s.Phase, s.every())}
		}
	}
	for i := 0; i < len(c.Slots); i++ {
		for j := 0; j < len(c.Slots); j++ {
			a, b := c.Slots[i], c.Slots[j]
			// Same-round conflicts (i < j suffices: sorted by Ready).
			if i < j && roundsCoincide(a.every(), a.Phase, b.every(), b.Phase, 0) {
				if b.Ready < a.End(cfg)+cfg.GapMin {
					return &AdmissionError{fmt.Sprintf(
						"slots %d (subject %d) and %d (subject %d) share rounds: start %v needs ≥ %v",
						i, a.Subject, j, b.Subject, b.Ready, a.End(cfg)+cfg.GapMin)}
				}
			}
			// Wrap conflicts: a at the end of round r, b at the start of
			// round r+1 (includes a == b when Every == 1).
			if roundsCoincide(a.every(), a.Phase, b.every(), b.Phase, 1) {
				if b.Ready+c.Round < a.End(cfg)+cfg.GapMin {
					return &AdmissionError{fmt.Sprintf(
						"round wrap: slot %d (subject %d) ends at %v, slot %d (subject %d) of the next round starts at %v",
						i, a.Subject, a.End(cfg), j, b.Subject, b.Ready+c.Round)}
				}
			}
		}
	}
	return nil
}

// Utilization returns the long-run fraction of bus time reserved for
// hard real-time traffic (spans only, without gaps), accounting for
// multi-round activation periods.
func (c *Calendar) Utilization() float64 {
	if c.Round <= 0 {
		return 0
	}
	var sum float64
	for _, s := range c.Slots {
		sum += float64(s.End(c.Cfg)-s.Ready) / float64(s.every())
	}
	return sum / float64(c.Round)
}

// SlotsFor returns the slots owned by the given publisher node.
func (c *Calendar) SlotsFor(n can.TxNode) []Slot {
	var out []Slot
	for _, s := range c.Slots {
		if s.Publisher == n {
			out = append(out, s)
		}
	}
	return out
}

// SlotsForSubject returns the slots carrying the given subject.
func (c *Calendar) SlotsForSubject(subj uint64) []Slot {
	var out []Slot
	for _, s := range c.Slots {
		if s.Subject == subj {
			out = append(out, s)
		}
	}
	return out
}

// PackSequential lays out the given slot requests back to back with the
// minimal admissible spacing, returning the resulting calendar. It is a
// convenience for constructing dense valid calendars in tests, benches and
// examples. The round length is the smallest multiple of quantum covering
// the packed slots (quantum 0 keeps the exact length).
func PackSequential(cfg Config, quantum sim.Duration, reqs ...Slot) (*Calendar, error) {
	var off sim.Duration
	cal := &Calendar{Cfg: cfg}
	for _, r := range reqs {
		r.Ready = off
		cal.Slots = append(cal.Slots, r)
		off = r.End(cfg) + cfg.GapMin
	}
	round := off
	if quantum > 0 && round%quantum != 0 {
		round = (round/quantum + 1) * quantum
	}
	cal.Round = round
	if err := cal.Admit(); err != nil {
		return nil, err
	}
	return cal, nil
}
