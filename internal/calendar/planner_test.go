package calendar

import (
	"testing"
	"testing/quick"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestPlanSingle(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := Plan(cfg, []Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Round != 10*sim.Millisecond {
		t.Fatalf("round = %v", cal.Round)
	}
	if len(cal.Slots) != 1 || cal.Slots[0].every() != 1 {
		t.Fatalf("slots = %+v", cal.Slots)
	}
	if got := cal.AchievedPeriod(1); got != 10*sim.Millisecond {
		t.Fatalf("achieved period = %v", got)
	}
	if cal.AchievedPeriod(99) != 0 {
		t.Fatal("phantom achieved period")
	}
}

func TestPlanHarmonicSet(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := Plan(cfg, []Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 5 * sim.Millisecond},
		{Subject: 2, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond},
		{Subject: 3, Publisher: 2, Payload: 8, Period: 20 * sim.Millisecond},
		{Subject: 4, Publisher: 3, Payload: 8, Period: 20 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Round != 5*sim.Millisecond {
		t.Fatalf("round = %v", cal.Round)
	}
	if got := cal.AchievedPeriod(2); got != 10*sim.Millisecond {
		t.Fatalf("subject 2 period = %v", got)
	}
	// The two 20 ms streams should be able to share bandwidth with the
	// 10 ms one via phases; overall utilization must reflect the periods.
	u := cal.Utilization()
	span := float64(cfg.SlotSpan(8))
	want := span/float64(5*sim.Millisecond) + span/float64(10*sim.Millisecond) + 2*span/float64(20*sim.Millisecond)
	if diff := u - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilization = %v, want %v", u, want)
	}
	if err := cal.Admit(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSharesWindows(t *testing.T) {
	// A round that fits exactly two slots, one full-rate stream plus two
	// half-rate streams: the planner must let the half-rate streams share
	// the second window with disjoint phases.
	cfg := DefaultConfig()
	span := cfg.SlotSpan(8)
	round := 2 * (span + cfg.GapMin)
	reqs := []Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: round},
		{Subject: 2, Publisher: 1, Payload: 8, Period: 2 * round},
		{Subject: 3, Publisher: 2, Payload: 8, Period: 2 * round},
	}
	cal, err := Plan(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var b, c Slot
	for _, s := range cal.Slots {
		switch s.Subject {
		case 2:
			b = s
		case 3:
			c = s
		}
	}
	if b.every() != 2 || c.every() != 2 {
		t.Fatalf("everys = %d/%d", b.every(), c.every())
	}
	if b.Ready != c.Ready {
		t.Fatalf("half-rate streams did not share a window: %v vs %v", b.Ready, c.Ready)
	}
	if b.Phase == c.Phase {
		t.Fatal("shared window with identical phases")
	}
}

func TestPlanNonHarmonicRoundsDown(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := Plan(cfg, []Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond},
		{Subject: 2, Publisher: 1, Payload: 8, Period: 25 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 25 ms quantised down to 2×10 ms = 20 ms: served at least as often
	// as requested.
	if got := cal.AchievedPeriod(2); got != 20*sim.Millisecond {
		t.Fatalf("achieved period = %v", got)
	}
}

func TestPlanRejectsOverfull(t *testing.T) {
	cfg := DefaultConfig()
	// 30 full-rate streams in a 2 ms round cannot fit (each span ≈543µs).
	var reqs []Request
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{
			Subject: uint64(i + 1), Publisher: can.TxNode(i), Payload: 8,
			Period: 2 * sim.Millisecond,
		})
	}
	if _, err := Plan(cfg, reqs); err == nil {
		t.Fatal("overfull request set planned")
	}
}

func TestPlanInputValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Plan(cfg, nil); err == nil {
		t.Fatal("empty request set planned")
	}
	if _, err := Plan(cfg, []Request{{Subject: 1, Payload: 8}}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Plan(cfg, []Request{{Subject: 1, Payload: 9, Period: sim.Millisecond}}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPlanPropertyAdmissibleAndComplete(t *testing.T) {
	cfg := DefaultConfig()
	periods := []sim.Duration{5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 40 * sim.Millisecond, 50 * sim.Millisecond}
	f := func(seed uint64, nRaw uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(nRaw%12) + 1
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Subject:   uint64(i + 1),
				Publisher: can.TxNode(i),
				Payload:   1 + rng.Intn(8),
				Period:    periods[rng.Intn(len(periods))],
				Periodic:  rng.Bool(0.5),
			}
		}
		cal, err := Plan(cfg, reqs)
		if err != nil {
			// Rejection is acceptable only if the set is actually heavy;
			// with ≤12 streams and ≥5 ms periods it never should be here.
			return false
		}
		if err := cal.Admit(); err != nil {
			return false
		}
		for _, r := range reqs {
			got := cal.AchievedPeriod(r.Subject)
			if got == 0 || got > r.Period {
				return false // missing or slower than requested
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlannedCalendarUtilizationBounded(t *testing.T) {
	// A planned calendar's utilization must stay ≤ 1 and equal the sum of
	// per-stream span/period quantised demands.
	cfg := DefaultConfig()
	reqs := []Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 4 * sim.Millisecond},
		{Subject: 2, Publisher: 1, Payload: 4, Period: 8 * sim.Millisecond},
		{Subject: 3, Publisher: 2, Payload: 2, Period: 16 * sim.Millisecond},
	}
	cal, err := Plan(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if u := cal.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}
