package control

import (
	"fmt"
	"math"
)

// Controller kinds accepted by LoopConfig.Controller and the scenario
// JSON spec.
const (
	ControllerPID = "pid"
	ControllerMPC = "mpc"
)

// controller computes a control input from the latest delivered state
// sample. Implementations are deterministic, allocation-free after
// construction, and run in kernel context (notification handlers).
type controller interface {
	command(x [2]float64, setpoint float64) float64
}

// pid is a PID law on the plant output with derivative taken from the
// measured rate state when the plant transmits one (double integrator) —
// avoiding noise amplification from differencing delayed samples — and
// from successive samples otherwise. The integral term is clamped to the
// saturation range to prevent windup while commands are stale.
type pid struct {
	kp, ki, kd float64
	dt         float64 // controller step, seconds (the loop period)
	umax       float64
	rate       bool // plant state 1 is the output's rate of change

	integ    float64
	prevErr  float64
	havePrev bool
}

func (c *pid) command(x [2]float64, setpoint float64) float64 {
	e := setpoint - x[0]
	c.integ += c.ki * e * c.dt
	if c.integ > c.umax {
		c.integ = c.umax
	} else if c.integ < -c.umax {
		c.integ = -c.umax
	}
	var d float64
	if c.rate {
		d = -x[1]
	} else if c.havePrev {
		d = (e - c.prevErr) / c.dt
	}
	c.prevErr, c.havePrev = e, true
	return clamp(c.kp*e+c.integ+c.kd*d, c.umax)
}

// mpc is an unconstrained horizon-N linear-quadratic model-predictive
// controller: it minimises Σ (x_i − r)'Q(x_i − r) + R·u_i² over the
// prediction model, applies the first input of the optimal sequence
// (clamped to the saturation range) and re-solves at every sample. The
// Hessian H = Γ'QΓ + R·I depends only on the model, so it is Cholesky-
// factorised once at construction; each sample costs one forward/backward
// substitution over preallocated buffers — no allocation, no iteration.
type mpc struct {
	m    Model
	n    int        // horizon
	q    [2]float64 // state cost diagonal
	umax float64

	pow  [][2][2]float64 // pow[i] = A^(i+1)
	gain [][][2]float64  // gain[i][j] = A^(i−j)·B, the effect of u_j on x_{i+1}
	chol [][]float64     // lower-triangular factor of H
	g    []float64       // gradient scratch
	u    []float64       // solution scratch
}

func newMPC(m Model, horizon int, q [2]float64, r, umax float64) (*mpc, error) {
	if horizon < 1 || horizon > 64 {
		return nil, fmt.Errorf("control: mpc horizon %d out of [1,64]", horizon)
	}
	c := &mpc{m: m, n: horizon, q: q, umax: umax,
		pow:  make([][2][2]float64, horizon),
		gain: make([][][2]float64, horizon),
		g:    make([]float64, horizon),
		u:    make([]float64, horizon),
	}
	c.pow[0] = m.A
	for i := 1; i < horizon; i++ {
		c.pow[i] = matMul(m.A, c.pow[i-1])
	}
	for i := 0; i < horizon; i++ {
		c.gain[i] = make([][2]float64, i+1)
		for j := 0; j <= i; j++ {
			c.gain[i][j] = matVec2(m.A, m.B, i-j)
		}
	}
	h := make([][]float64, horizon)
	for a := 0; a < horizon; a++ {
		h[a] = make([]float64, horizon)
		for b := 0; b <= a; b++ {
			var v float64
			for i := a; i < horizon; i++ {
				ga, gb := c.gain[i][a], c.gain[i][b]
				v += ga[0]*q[0]*gb[0] + ga[1]*q[1]*gb[1]
			}
			if a == b {
				v += r
			}
			h[a][b] = v
			h[b][a] = v
		}
	}
	var err error
	c.chol, err = cholesky(h)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (c *mpc) command(x [2]float64, setpoint float64) float64 {
	// Gradient of the quadratic cost at u = 0: g_j = Σ_{i≥j} Γ_ij'·Q·e_i
	// with e_i = A^(i+1)·x − r the free response error.
	for j := range c.g {
		c.g[j] = 0
	}
	for i := 0; i < c.n; i++ {
		p := &c.pow[i]
		e0 := p[0][0]*x[0] + p[0][1]*x[1] - setpoint
		e1 := p[1][0]*x[0] + p[1][1]*x[1]
		w0, w1 := c.q[0]*e0, c.q[1]*e1
		for j := 0; j <= i; j++ {
			gij := &c.gain[i][j]
			c.g[j] += gij[0]*w0 + gij[1]*w1
		}
	}
	// Solve H·u = −g via the precomputed Cholesky factor.
	for i := 0; i < c.n; i++ {
		v := -c.g[i]
		for k := 0; k < i; k++ {
			v -= c.chol[i][k] * c.u[k]
		}
		c.u[i] = v / c.chol[i][i]
	}
	for i := c.n - 1; i >= 0; i-- {
		v := c.u[i]
		for k := i + 1; k < c.n; k++ {
			v -= c.chol[k][i] * c.u[k]
		}
		c.u[i] = v / c.chol[i][i]
	}
	return clamp(c.u[0], c.umax)
}

func clamp(u, umax float64) float64 {
	if u > umax {
		return umax
	}
	if u < -umax {
		return -umax
	}
	return u
}

func matMul(a, b [2][2]float64) [2][2]float64 {
	var out [2][2]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return out
}

func matVec(a [2][2]float64, v [2]float64) [2]float64 {
	return [2]float64{a[0][0]*v[0] + a[0][1]*v[1], a[1][0]*v[0] + a[1][1]*v[1]}
}

// matVec2 computes A^k·B without allocating intermediate powers.
func matVec2(a [2][2]float64, b [2]float64, k int) [2]float64 {
	v := b
	for ; k > 0; k-- {
		v = matVec(a, v)
	}
	return v
}

// cholesky returns the lower-triangular factor L with L·L' = h, failing
// on a non-positive-definite matrix (R ≤ 0 or a degenerate model).
func cholesky(h [][]float64) ([][]float64, error) {
	n := len(h)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := h[i][j]
			for k := 0; k < j; k++ {
				v -= l[i][k] * l[j][k]
			}
			if i == j {
				if v <= 0 {
					return nil, fmt.Errorf("control: mpc cost matrix not positive definite")
				}
				l[i][i] = math.Sqrt(v)
			} else {
				l[i][j] = v / l[j][j]
			}
		}
	}
	return l, nil
}
