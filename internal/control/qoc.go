package control

import (
	"fmt"

	"canec/internal/sim"
	"canec/internal/stats"
)

// QoC is the quality-of-control report of one closed loop: the
// application-level answer to "did the bus do its job". Cost is the
// time-integrated quadratic state+input cost — the canonical LQ measure;
// a loop whose frames arrive on time accrues it only during the initial
// transient, while late or lost frames keep the plant away from its
// setpoint and make cost burn for the whole run.
type QoC struct {
	// Loop is the loop's configured name; Class the channel class its
	// sensor and command legs ride.
	Loop  string
	Class string

	// Cost is ∫ (q·e² + q_v·v² + r·u²) dt over the run; CostPerSec
	// normalises it by the simulated span for cross-run comparison.
	Cost       float64
	CostPerSec float64
	// Settled reports whether the plant output entered the settling band
	// around the setpoint and never left it again for at least the
	// settling hold; SettlingTime is when it last entered for good.
	Settled      bool
	SettlingTime sim.Duration
	// Overshoot is the worst excursion past the setpoint on the far side
	// of the initial error, as a fraction of that initial error.
	Overshoot float64
	// MaxDev is the worst absolute deviation from the setpoint over the
	// whole run; FinalDev the deviation at the end.
	MaxDev   float64
	FinalDev float64
	// Stale counts plant ticks executed under a held command older than
	// the loop's staleness bound — the zero-order hold running blind.
	Stale uint64
	// Steps counts plant integration ticks.
	Steps uint64

	// Leg counters: samples published by the sensor, commands published
	// by the controller, commands latched by the actuator, actuator acks
	// delivered back to the controller (0 unless the ack leg is enabled).
	Samples  uint64
	Commands uint64
	Applied  uint64
	Acks     uint64

	// Latency aggregates the measured sensor-sample → actuator-apply
	// latency in microseconds, exactly mergeable across loops and
	// segments (stats.LogHistogram).
	Latency *stats.LogHistogram
}

// String renders the canonical single-line report, stable for smoke
// scripts: cost with fixed precision, settling verdict, overshoot,
// staleness and the measured loop latency quantiles.
func (q *QoC) String() string {
	settled := "not settled"
	if q.Settled {
		settled = fmt.Sprintf("settled at %d ms", int64(q.SettlingTime/sim.Millisecond))
	}
	lat := "-"
	if q.Latency != nil && q.Latency.N() > 0 {
		lat = fmt.Sprintf("%.0f/%.0f µs", q.Latency.Quantile(0.50), q.Latency.Quantile(0.99))
	}
	return fmt.Sprintf("control %s[%s]: cost %.4f (%.4f/s), %s, overshoot %.1f%%, maxDev %.4f, stale %d, cmds %d/%d applied, lat p50/p99 %s",
		q.Loop, q.Class, q.Cost, q.CostPerSec, settled, 100*q.Overshoot,
		q.MaxDev, q.Stale, q.Applied, q.Commands, lat)
}
