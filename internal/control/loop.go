package control

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
)

// Wire encoding: signed 24-bit fixed point, scale 2048 (≈0.5 milli-unit
// resolution, range ±4096), little endian. The sensor frame fits an HRT
// channel's 7 application bytes: sequence byte + position + rate.
const (
	fixScale = 2048.0
	fixLimit = float64(1<<23-1) / fixScale

	sensorPayload  = 7 // seq + fixed24 position + fixed24 rate
	commandPayload = 4 // seq + fixed24 input
	ackPayload     = 4 // seq + fixed24 applied input
)

// Quadratic cost weights shared by the QoC measure and the MPC objective:
// position error dominates, rate and input are regularised.
const (
	costQPos = 1.0
	costQVel = 0.01
	costRU   = 1e-4
)

func putFix24(dst []byte, v float64) {
	if v > fixLimit {
		v = fixLimit
	} else if v < -fixLimit {
		v = -fixLimit
	}
	n := int32(v * fixScale)
	dst[0] = byte(n)
	dst[1] = byte(n >> 8)
	dst[2] = byte(n >> 16)
}

func getFix24(src []byte) float64 {
	n := int32(src[0]) | int32(src[1])<<8 | int32(src[2])<<16
	n = n << 8 >> 8 // sign extend
	return float64(n) / fixScale
}

// LoopConfig describes one closed sensor → controller → actuator loop.
type LoopConfig struct {
	// Name labels the loop in reports, metrics and trace records.
	Name string
	// Plant selects the physical model (PlantDoubleIntegrator or
	// PlantThermal); Controller the control law (ControllerPID or
	// ControllerMPC).
	Plant      string
	Controller string
	// Class is the channel class the sensor and command legs ride;
	// AckClass the class of the optional actuator-ack leg.
	Class    core.Class
	AckClass core.Class
	// Sensor, ControllerNode and Actuator are the hosting stations. The
	// plant itself is physics: it keeps evolving even while its stations
	// are crashed — only the loop around it goes blind.
	Sensor, ControllerNode, Actuator int
	// SensorSubject and CommandSubject are the two event channels the
	// loop requires; AckSubject (0 disables) adds the actuator ack leg.
	SensorSubject, CommandSubject, AckSubject uint64
	// Period is the sensor sampling period (and the HRT slot period when
	// the loop rides HRT channels).
	Period sim.Duration
	// Substeps is the number of plant integration ticks per sampling
	// period (default 4): commands latch at substep resolution, so
	// sub-period delivery latency is visible in the cost.
	Substeps int
	// Setpoint is the reference for the plant output; Initial the
	// plant's starting output (rate starts at zero).
	Setpoint, Initial float64
	// Horizon is the MPC prediction horizon (default 16 — the input's
	// authority over position grows with the square of the lookahead, so
	// short horizons leave a double integrator underactuated; PID
	// ignores it).
	Horizon int
	// StaleAfter is the held-command age beyond which a plant tick
	// counts as stale (default 2×Period).
	StaleAfter sim.Duration
	// UMax saturates the commanded input (default 200).
	UMax float64
}

func (cfg *LoopConfig) fillDefaults() {
	if cfg.Substeps <= 0 {
		cfg.Substeps = 4
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 16
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 2 * cfg.Period
	}
	if cfg.UMax <= 0 {
		cfg.UMax = 200
	}
}

// Validate checks everything except node ranges (the caller knows the
// segment size; scenario validates node references with NodeRefError).
func (cfg *LoopConfig) Validate() error {
	if cfg.Name == "" {
		return fmt.Errorf("control: loop needs a name")
	}
	if cfg.Period <= 0 {
		return fmt.Errorf("control: loop %q: non-positive period", cfg.Name)
	}
	if cfg.SensorSubject == 0 || cfg.CommandSubject == 0 {
		return fmt.Errorf("control: loop %q: sensor and command subjects required", cfg.Name)
	}
	if cfg.SensorSubject == cfg.CommandSubject || cfg.SensorSubject == cfg.AckSubject ||
		cfg.CommandSubject == cfg.AckSubject {
		return fmt.Errorf("control: loop %q: subjects must be distinct", cfg.Name)
	}
	switch cfg.Plant {
	case PlantDoubleIntegrator, PlantThermal:
	default:
		return fmt.Errorf("control: loop %q: unknown plant %q", cfg.Name, cfg.Plant)
	}
	switch cfg.Controller {
	case ControllerPID, ControllerMPC:
	default:
		return fmt.Errorf("control: loop %q: unknown controller %q", cfg.Name, cfg.Controller)
	}
	switch cfg.Class {
	case core.HRT, core.SRT, core.NRT:
	default:
		return fmt.Errorf("control: loop %q: invalid class", cfg.Name)
	}
	return nil
}

// CalendarRequests returns the HRT slot reservations the loop's legs
// need; nil when no leg rides HRT. Callers merge these into the slot
// calendar before building the system.
func (cfg LoopConfig) CalendarRequests() []calendar.Request {
	cfg.fillDefaults()
	var reqs []calendar.Request
	if cfg.Class == core.HRT {
		reqs = append(reqs,
			calendar.Request{Subject: cfg.SensorSubject, Publisher: can.TxNode(cfg.Sensor),
				Payload: sensorPayload + 1, Period: cfg.Period, Periodic: true},
			calendar.Request{Subject: cfg.CommandSubject, Publisher: can.TxNode(cfg.ControllerNode),
				Payload: commandPayload + 1, Period: cfg.Period, Periodic: true})
	}
	if cfg.AckSubject != 0 && cfg.AckClass == core.HRT {
		reqs = append(reqs, calendar.Request{Subject: cfg.AckSubject, Publisher: can.TxNode(cfg.Actuator),
			Payload: ackPayload + 1, Period: cfg.Period, Periodic: true})
	}
	return reqs
}

// Loop is one installed closed loop. All methods run in kernel context.
type Loop struct {
	cfg LoopConfig
	o   *obs.Observer

	k     *sim.Kernel
	epoch sim.Time
	end   sim.Time
	down  func(int) bool

	model Model // substep-dt integration model
	x     [2]float64
	ctl   controller

	// Zero-order hold: the actuator drives the plant with the last
	// latched command until a newer one arrives.
	heldU        float64
	heldSampleAt sim.Time
	haveCmd      bool

	seq      uint8
	sampleAt [256]sim.Time // kernel publish time per sequence number

	pubSensor  func(p []byte) error
	pubCommand func(p []byte) error
	pubAck     func(p []byte) error

	qoc     QoC
	band    float64  // settling band around the setpoint
	hold    sim.Duration
	lastOut sim.Time // last substep the output was outside the band
	e0      float64  // initial error (overshoot normalisation)
}

// NewLoop builds a loop from its config. The observer may be nil.
func NewLoop(cfg LoopConfig, o *obs.Observer) (*Loop, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dtSub := cfg.Period / sim.Duration(cfg.Substeps)
	model, err := plantModel(cfg.Plant, dtSub)
	if err != nil {
		return nil, err
	}
	l := &Loop{
		cfg:   cfg,
		o:     o,
		model: model,
		x:     [2]float64{cfg.Initial, 0},
		band:  0.02 * maxf(absf(cfg.Setpoint-cfg.Initial), 1),
		hold:  maxd(10*cfg.Period, 50*sim.Millisecond),
		e0:    cfg.Setpoint - cfg.Initial,
	}
	l.qoc.Loop = cfg.Name
	l.qoc.Class = cfg.Class.String()
	l.qoc.Latency = stats.NewLogHistogram("lat_us_"+cfg.Name, 1, 1e6, 60)
	switch cfg.Controller {
	case ControllerPID:
		// Gains tuned per plant for a fast, well-damped nominal loop.
		// The double-integrator bandwidth scales with the sampling rate
		// (ωn = 0.25/T, ζ = 0.7): the loop tolerates the ~1–2 periods of
		// transport delay a healthy channel adds, while delays of many
		// periods — a congested or attacked bus — visibly erode the
		// phase margin, which is exactly what the QoC measure exposes.
		if cfg.Plant == PlantDoubleIntegrator {
			wn := 0.25 / secs(cfg.Period)
			l.ctl = &pid{kp: wn * wn, kd: 1.4 * wn, dt: secs(cfg.Period), umax: cfg.UMax, rate: true}
		} else {
			l.ctl = &pid{kp: 8, ki: 30, dt: secs(cfg.Period), umax: cfg.UMax}
		}
	case ControllerMPC:
		// The MPC predicts over the sampling period, not the substep.
		pm, err := plantModel(cfg.Plant, cfg.Period)
		if err != nil {
			return nil, err
		}
		l.ctl, err = newMPC(pm, cfg.Horizon, [2]float64{costQPos, costQVel}, costRU, cfg.UMax)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Config returns the loop's effective (default-filled) configuration.
func (l *Loop) Config() LoopConfig { return l.cfg }

// Deviation returns the instantaneous absolute deviation of the plant
// output from the setpoint (kernel context; wired as a metrics gauge).
func (l *Loop) Deviation() float64 { return absf(l.cfg.Setpoint - l.x[0]) }

// Install announces and subscribes all legs on their hosting stations
// (mw maps a station index to its middleware — indices may span bridged
// segments), registers the deviation gauge, and starts the plant ticker:
// physics run from epoch to end regardless of station crashes, while
// down gates the software legs like any scenario application.
func (l *Loop) Install(k *sim.Kernel, epoch, end sim.Time, mw func(int) *core.Middleware, down func(int) bool) error {
	l.k, l.epoch, l.end = k, epoch, end
	l.lastOut = epoch
	l.heldSampleAt = epoch
	l.down = down
	if l.down == nil {
		l.down = func(int) bool { return false }
	}
	if err := l.wireSensor(mw(l.cfg.Sensor)); err != nil {
		return err
	}
	if err := l.wireController(mw(l.cfg.ControllerNode)); err != nil {
		return err
	}
	if err := l.wireActuator(mw(l.cfg.Actuator)); err != nil {
		return err
	}
	l.o.RegisterControlLoop(l.cfg.Name, l.Deviation)

	dtSub := l.cfg.Period / sim.Duration(l.cfg.Substeps)
	step := 0
	var tick func()
	tick = func() {
		now := k.Now()
		if now >= end {
			return
		}
		if step > 0 {
			l.substep(now, dtSub)
		}
		if step%l.cfg.Substeps == 0 {
			l.sample(now)
		}
		step++
		k.After(dtSub, tick)
	}
	k.At(epoch, tick)
	return nil
}

// Rewire re-announces and re-subscribes every leg hosted on station n
// after a chaos restart handed it a fresh middleware.
func (l *Loop) Rewire(n int, mw *core.Middleware) {
	if l.cfg.Sensor == n {
		_ = l.wireSensor(mw)
	}
	if l.cfg.ControllerNode == n {
		_ = l.wireController(mw)
	}
	if l.cfg.Actuator == n {
		_ = l.wireActuator(mw)
	}
}

// Hosts reports whether the loop has a leg on station n (callers use it
// to route restart notifications).
func (l *Loop) Hosts(n int) bool {
	return l.cfg.Sensor == n || l.cfg.ControllerNode == n || l.cfg.Actuator == n
}

// substep advances the plant by dt under the held command and accrues
// the quadratic cost and staleness accounting.
func (l *Loop) substep(now sim.Time, dt sim.Duration) {
	l.model.step(&l.x, l.heldU)
	l.qoc.Steps++
	e := l.cfg.Setpoint - l.x[0]
	delta := (costQPos*e*e + costQVel*l.x[1]*l.x[1] + costRU*l.heldU*l.heldU) * secs(dt)
	l.qoc.Cost += delta
	l.o.ControlCost(l.cfg.Name, delta)

	dev := absf(e)
	if dev > l.qoc.MaxDev {
		l.qoc.MaxDev = dev
	}
	// Overshoot: excursion past the setpoint on the far side of the
	// initial error.
	if l.e0 != 0 {
		exc := -e
		if l.e0 < 0 {
			exc = e
		}
		if exc > l.qoc.Overshoot*absf(l.e0) {
			l.qoc.Overshoot = exc / absf(l.e0)
		}
	}
	if dev > l.band {
		l.lastOut = now
	}
	if now-l.heldSampleAt > sim.Time(l.cfg.StaleAfter) {
		l.qoc.Stale++
		l.o.ControlStale(l.cfg.Name, l.qoc.Class, l.cfg.Actuator, now)
	}
}

// sample publishes the current plant state on the sensor channel.
func (l *Loop) sample(now sim.Time) {
	if l.down(l.cfg.Sensor) || l.pubSensor == nil {
		return
	}
	l.seq++
	l.sampleAt[l.seq] = now
	p := make([]byte, sensorPayload)
	p[0] = l.seq
	putFix24(p[1:], l.x[0])
	putFix24(p[4:], l.x[1])
	if l.pubSensor(p) == nil {
		l.qoc.Samples++
		l.o.ControlLoopStage(obs.StageCtrlSample, l.cfg.Name, l.qoc.Class, l.cfg.Sensor, now)
	}
}

// onSample is the controller's notification handler: compute the input
// from the delivered state and publish the command, echoing the sample's
// sequence number so the actuator can attribute latency to the sample.
func (l *Loop) onSample(ev core.Event, _ core.DeliveryInfo) {
	if l.down(l.cfg.ControllerNode) || len(ev.Payload) < sensorPayload || l.pubCommand == nil {
		return
	}
	x := [2]float64{getFix24(ev.Payload[1:]), getFix24(ev.Payload[4:])}
	u := l.ctl.command(x, l.cfg.Setpoint)
	p := make([]byte, commandPayload)
	p[0] = ev.Payload[0]
	putFix24(p[1:], u)
	if l.pubCommand(p) == nil {
		l.qoc.Commands++
		l.o.ControlLoopStage(obs.StageCtrlCommand, l.cfg.Name, l.qoc.Class, l.cfg.ControllerNode, l.k.Now())
	}
}

// onCommand is the actuator's notification handler — the zero-order-hold
// hot path, allocation-free when the ack leg is off: latch the command,
// attribute the sample→actuate latency through the sequence ring.
func (l *Loop) onCommand(ev core.Event, _ core.DeliveryInfo) {
	if l.down(l.cfg.Actuator) || len(ev.Payload) < commandPayload {
		return
	}
	now := l.k.Now()
	seq := ev.Payload[0]
	l.heldU = getFix24(ev.Payload[1:])
	l.haveCmd = true
	l.qoc.Applied++
	if at := l.sampleAt[seq]; at > 0 && now >= at {
		us := float64(now-at) / 1e3
		l.qoc.Latency.Observe(us)
		l.o.ControlLatency(l.cfg.Name, us)
		l.heldSampleAt = at
	}
	l.o.ControlLoopStage(obs.StageCtrlApply, l.cfg.Name, l.qoc.Class, l.cfg.Actuator, now)
	if l.pubAck != nil {
		p := make([]byte, ackPayload)
		p[0] = seq
		putFix24(p[1:], l.heldU)
		_ = l.pubAck(p) // counted on delivery at the controller (qoc.Acks)
	}
}

// onAck counts ack deliveries back at the controller.
func (l *Loop) onAck(ev core.Event, _ core.DeliveryInfo) {
	if len(ev.Payload) >= 1 {
		l.qoc.Acks++
	}
}

func (l *Loop) wireSensor(mw *core.Middleware) error {
	pub, err := l.announce(mw, l.cfg.SensorSubject, l.cfg.Class, sensorPayload)
	if err != nil {
		return err
	}
	l.pubSensor = pub
	return nil
}

func (l *Loop) wireController(mw *core.Middleware) error {
	if err := l.subscribe(mw, l.cfg.SensorSubject, l.cfg.Class, sensorPayload, l.onSample); err != nil {
		return err
	}
	pub, err := l.announce(mw, l.cfg.CommandSubject, l.cfg.Class, commandPayload)
	if err != nil {
		return err
	}
	l.pubCommand = pub
	if l.cfg.AckSubject != 0 {
		if err := l.subscribe(mw, l.cfg.AckSubject, l.cfg.AckClass, ackPayload, l.onAck); err != nil {
			return err
		}
	}
	return nil
}

func (l *Loop) wireActuator(mw *core.Middleware) error {
	if err := l.subscribe(mw, l.cfg.CommandSubject, l.cfg.Class, commandPayload, l.onCommand); err != nil {
		return err
	}
	if l.cfg.AckSubject != 0 {
		pub, err := l.announce(mw, l.cfg.AckSubject, l.cfg.AckClass, ackPayload)
		if err != nil {
			return err
		}
		l.pubAck = pub
	}
	return nil
}

// announce opens and announces one publishing leg, returning a
// class-appropriate publish closure: SRT events carry the loop period as
// deadline (and twice it as expiration — a command two periods old is
// worthless, shed it on the wire), HRT rides its calendar slot, NRT runs
// best-effort at the band's default priority.
func (l *Loop) announce(mw *core.Middleware, subject uint64, class core.Class, payload int) (func(p []byte) error, error) {
	subj := binding.Subject(subject)
	switch class {
	case core.HRT:
		ch, err := mw.HRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: payload, Periodic: true}, nil); err != nil {
			return nil, err
		}
		return func(p []byte) error {
			return ch.Publish(core.Event{Subject: subj, Payload: p})
		}, nil
	case core.SRT:
		ch, err := mw.SRTEC(subj)
		if err != nil {
			return nil, err
		}
		attrs := core.ChannelAttrs{Payload: payload, Period: l.cfg.Period, RelDeadline: l.cfg.Period}
		if err := ch.Announce(attrs, nil); err != nil {
			return nil, err
		}
		period := l.cfg.Period
		return func(p []byte) error {
			now := mw.LocalTime()
			return ch.Publish(core.Event{Subject: subj, Payload: p, Attrs: core.EventAttrs{
				Deadline: now + period, Expiration: now + 2*period}})
		}, nil
	default:
		ch, err := mw.NRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: payload}, nil); err != nil {
			return nil, err
		}
		return func(p []byte) error {
			return ch.Publish(core.Event{Subject: subj, Payload: p})
		}, nil
	}
}

func (l *Loop) subscribe(mw *core.Middleware, subject uint64, class core.Class, payload int, notify core.NotificationHandler) error {
	subj := binding.Subject(subject)
	switch class {
	case core.HRT:
		ch, err := mw.HRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{Payload: payload, Periodic: true},
			core.SubscribeAttrs{}, notify, nil)
	case core.SRT:
		ch, err := mw.SRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{}, notify, nil)
	default:
		ch, err := mw.NRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{Payload: payload}, core.SubscribeAttrs{}, notify, nil)
	}
}

// Report returns the loop's QoC snapshot: final after the run, live when
// read mid-run (kernel context — admin handlers route through
// sim.Paced.Call).
func (l *Loop) Report() QoC {
	q := l.qoc
	now := l.end
	if l.k != nil && l.k.Now() < now {
		now = l.k.Now()
	}
	span := now - l.epoch
	if span > 0 {
		q.CostPerSec = q.Cost / secs(sim.Duration(span))
	}
	q.FinalDev = l.Deviation()
	q.Settled = now-l.lastOut >= sim.Time(l.hold)
	q.SettlingTime = sim.Duration(l.lastOut - l.epoch)
	q.Latency = l.qoc.Latency.Clone()
	return q
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxd(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
