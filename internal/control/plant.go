// Package control implements closed-loop plant/controller workloads over
// the event channel middleware: discrete-time linear plants stepped
// deterministically on the simulation kernel, PID and horizon-N linear
// MPC controllers, and the sensor → controller → actuator loop whose
// three legs each ride a configurable channel class. The actuator applies
// the last-received command with zero-order hold, so late or lost frames
// visibly hurt the plant — turning every chaos, admission and federation
// scenario into a quality-of-control experiment (ROADMAP item 5; cf.
// "Model Predictive Control under Timing Constraints induced by CAN",
// arXiv 1503.02300).
package control

import (
	"fmt"
	"math"

	"canec/internal/sim"
)

// Model is a discrete-time linear state-space realisation
// x⁺ = A·x + B·u with at most two states, exact for a zero-order-held
// input over the discretisation step it was built for. It is shared by
// the plants (integration) and the MPC controller (prediction).
type Model struct {
	A [2][2]float64
	B [2]float64
	// N is the state dimension (1 or 2).
	N int
}

// secs converts a virtual duration to floating-point seconds for the
// continuous-time plant coefficients.
func secs(d sim.Duration) float64 { return float64(d) / 1e9 }

// step advances x in place by one model step under the held input u.
func (m *Model) step(x *[2]float64, u float64) {
	x0 := m.A[0][0]*x[0] + m.A[0][1]*x[1] + m.B[0]*u
	x1 := m.A[1][0]*x[0] + m.A[1][1]*x[1] + m.B[1]*u
	x[0], x[1] = x0, x1
}

// DoubleIntegrator returns the exact ZOH discretisation of the
// double-integrator cart x'' = u (position, velocity) for step dt:
// position += v·dt + u·dt²/2, velocity += u·dt.
func DoubleIntegrator(dt sim.Duration) Model {
	h := secs(dt)
	return Model{
		A: [2][2]float64{{1, h}, {0, 1}},
		B: [2]float64{h * h / 2, h},
		N: 2,
	}
}

// FirstOrderThermal returns the exact ZOH discretisation of the
// first-order thermal plant τ·x' = −x + gain·u for step dt:
// x⁺ = a·x + (1−a)·gain·u with a = exp(−dt/τ).
func FirstOrderThermal(dt, tau sim.Duration, gain float64) Model {
	a := math.Exp(-secs(dt) / secs(tau))
	return Model{
		A: [2][2]float64{{a, 0}, {0, 0}},
		B: [2]float64{(1 - a) * gain, 0},
		N: 1,
	}
}

// Plant kinds accepted by LoopConfig.Plant and the scenario JSON spec.
const (
	PlantDoubleIntegrator = "double_integrator"
	PlantThermal          = "thermal"
)

// plantModel builds the integration model for a named plant kind at
// step dt. The thermal time constant and gain are fixed loop defaults
// (200 ms, unit gain): the loops measure the network, not plant variety.
func plantModel(kind string, dt sim.Duration) (Model, error) {
	switch kind {
	case PlantDoubleIntegrator:
		return DoubleIntegrator(dt), nil
	case PlantThermal:
		return FirstOrderThermal(dt, 200*sim.Millisecond, 1), nil
	default:
		return Model{}, fmt.Errorf("control: unknown plant %q", kind)
	}
}
