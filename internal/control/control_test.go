package control

import (
	"math"
	"strings"
	"testing"

	"canec/internal/core"
	"canec/internal/sim"
)

func TestDoubleIntegratorExactZOH(t *testing.T) {
	dt := 10 * sim.Millisecond
	m := DoubleIntegrator(dt)
	x := [2]float64{1, 2}
	u := 3.0
	m.step(&x, u)
	h := 0.01
	wantPos := 1 + 2*h + u*h*h/2
	wantVel := 2 + u*h
	if math.Abs(x[0]-wantPos) > 1e-12 || math.Abs(x[1]-wantVel) > 1e-12 {
		t.Fatalf("step = %v, want [%v %v]", x, wantPos, wantVel)
	}
}

func TestThermalConvergesToGain(t *testing.T) {
	m := FirstOrderThermal(5*sim.Millisecond, 200*sim.Millisecond, 1)
	x := [2]float64{0, 0}
	for i := 0; i < 2000; i++ { // 10 s >> τ
		m.step(&x, 2.5)
	}
	if math.Abs(x[0]-2.5) > 1e-6 {
		t.Fatalf("thermal steady state = %v, want 2.5", x[0])
	}
}

func TestFix24RoundTrip(t *testing.T) {
	var b [3]byte
	for _, v := range []float64{0, 1, -1, 3.14159, -1234.5, 4095, -4095} {
		putFix24(b[:], v)
		got := getFix24(b[:])
		if math.Abs(got-v) > 1/fixScale {
			t.Fatalf("fix24(%v) = %v", v, got)
		}
	}
	putFix24(b[:], 1e9) // clamps, must not wrap sign
	if got := getFix24(b[:]); got < 4000 {
		t.Fatalf("clamped fix24(1e9) = %v", got)
	}
	putFix24(b[:], -1e9)
	if got := getFix24(b[:]); got > -4000 {
		t.Fatalf("clamped fix24(-1e9) = %v", got)
	}
}

// localLoop runs controller and plant with no network in between: the
// baseline both control laws must at minimum handle.
func localLoop(t *testing.T, plant, controller string, setpoint, initial float64) [2]float64 {
	t.Helper()
	period := 5 * sim.Millisecond
	cfg := LoopConfig{Name: "local", Plant: plant, Controller: controller,
		Class: core.SRT, Sensor: 0, ControllerNode: 0, Actuator: 0,
		SensorSubject: 1, CommandSubject: 2, Period: period,
		Setpoint: setpoint, Initial: initial}
	l, err := NewLoop(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := plantModel(plant, period)
	x := [2]float64{initial, 0}
	for i := 0; i < 400; i++ { // 2 s
		u := l.ctl.command(x, setpoint)
		m.step(&x, u)
	}
	return x
}

func TestPIDSettles(t *testing.T) {
	x := localLoop(t, PlantDoubleIntegrator, ControllerPID, 0, 1)
	if math.Abs(x[0]) > 0.02 || math.Abs(x[1]) > 0.5 {
		t.Fatalf("pid/double_integrator final state = %v", x)
	}
	x = localLoop(t, PlantThermal, ControllerPID, 1, 0)
	if math.Abs(x[0]-1) > 0.02 {
		t.Fatalf("pid/thermal final state = %v", x)
	}
}

func TestMPCSettles(t *testing.T) {
	x := localLoop(t, PlantDoubleIntegrator, ControllerMPC, 0, 1)
	if math.Abs(x[0]) > 0.02 || math.Abs(x[1]) > 0.5 {
		t.Fatalf("mpc/double_integrator final state = %v", x)
	}
	x = localLoop(t, PlantThermal, ControllerMPC, 1, 0)
	if math.Abs(x[0]-1) > 0.05 {
		t.Fatalf("mpc/thermal final state = %v", x)
	}
}

func TestMPCQuietAtSetpoint(t *testing.T) {
	pm := DoubleIntegrator(5 * sim.Millisecond)
	c, err := newMPC(pm, 8, [2]float64{costQPos, costQVel}, costRU, 200)
	if err != nil {
		t.Fatal(err)
	}
	if u := c.command([2]float64{0, 0}, 0); math.Abs(u) > 1e-9 {
		t.Fatalf("mpc at setpoint commands %v, want 0", u)
	}
}

func TestLoopConfigValidate(t *testing.T) {
	good := LoopConfig{Name: "x", Plant: PlantDoubleIntegrator, Controller: ControllerPID,
		Class: core.SRT, SensorSubject: 1, CommandSubject: 2, Period: sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mutate func(*LoopConfig)
		want   string
	}{
		{func(c *LoopConfig) { c.Name = "" }, "name"},
		{func(c *LoopConfig) { c.Period = 0 }, "period"},
		{func(c *LoopConfig) { c.CommandSubject = 1 }, "distinct"},
		{func(c *LoopConfig) { c.Plant = "pendulum" }, "plant"},
		{func(c *LoopConfig) { c.Controller = "lqr" }, "controller"},
	} {
		cfg := good
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
		}
	}
}

func TestCalendarRequestsForHRT(t *testing.T) {
	cfg := LoopConfig{Name: "h", Plant: PlantDoubleIntegrator, Controller: ControllerPID,
		Class: core.HRT, Sensor: 1, ControllerNode: 2, Actuator: 1,
		SensorSubject: 0x101, CommandSubject: 0x102, Period: 10 * sim.Millisecond}
	reqs := cfg.CalendarRequests()
	if len(reqs) != 2 {
		t.Fatalf("HRT loop calendar requests = %d, want 2", len(reqs))
	}
	if reqs[0].Subject != 0x101 || reqs[1].Subject != 0x102 {
		t.Fatalf("request subjects = %v", reqs)
	}
	cfg.Class = core.SRT
	if reqs := cfg.CalendarRequests(); reqs != nil {
		t.Fatalf("SRT loop calendar requests = %v, want none", reqs)
	}
}

// TestClosedLoopOverSRT closes a PID loop over real SRT event channels on
// a simulated segment and asserts it settles with measured latency.
func TestClosedLoopOverSRT(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{Nodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := LoopConfig{Name: "cart", Plant: PlantDoubleIntegrator, Controller: ControllerPID,
		Class: core.SRT, Sensor: 1, ControllerNode: 2, Actuator: 1,
		SensorSubject: 0x301, CommandSubject: 0x302, Period: 5 * sim.Millisecond,
		Setpoint: 0, Initial: 1}
	l, err := NewLoop(cfg, sys.Obs)
	if err != nil {
		t.Fatal(err)
	}
	end := sys.Cfg.Epoch + sim.Time(1200*sim.Millisecond)
	if err := l.Install(sys.K, sys.Cfg.Epoch, end, func(n int) *core.Middleware {
		return sys.Node(n).MW
	}, nil); err != nil {
		t.Fatal(err)
	}
	sys.Run(end)
	q := l.Report()
	if !q.Settled {
		t.Fatalf("loop did not settle: %s", q.String())
	}
	if q.Applied < 100 {
		t.Fatalf("only %d commands applied: %s", q.Applied, q.String())
	}
	if q.Latency.N() == 0 {
		t.Fatalf("no loop latencies measured: %s", q.String())
	}
	if q.Stale > q.Steps/10 {
		t.Fatalf("clean bus but %d/%d stale ticks: %s", q.Stale, q.Steps, q.String())
	}
	if q.Cost <= 0 {
		t.Fatalf("zero cost over a transient: %s", q.String())
	}
}

// TestActuatorHotPathZeroAllocs pins the zero-order-hold latch — the
// per-command hot path — at zero allocations when observers are off, in
// the style of TestNilObserverZeroAllocs.
func TestActuatorHotPathZeroAllocs(t *testing.T) {
	cfg := LoopConfig{Name: "pin", Plant: PlantDoubleIntegrator, Controller: ControllerPID,
		Class: core.SRT, SensorSubject: 1, CommandSubject: 2, Period: 5 * sim.Millisecond}
	l, err := NewLoop(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.k = sim.NewKernel(1)
	l.down = func(int) bool { return false }
	l.sampleAt[9] = 1 // exercise the latency branch too
	payload := make([]byte, commandPayload)
	payload[0] = 9
	putFix24(payload[1:], 1.5)
	ev := core.Event{Subject: 2, Payload: payload}
	di := core.DeliveryInfo{}
	if allocs := testing.AllocsPerRun(1000, func() { l.onCommand(ev, di) }); allocs != 0 {
		t.Fatalf("actuator hot path: %v allocs/op, want 0", allocs)
	}
}
