package gateway

import (
	"errors"
	"fmt"
	"sort"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
)

// RemoteEvent is the unit of federation: one event crossing from a bus
// segment onto an inter-segment transport. It carries everything the CAN
// wire cannot — the origin publisher and segment, the hop count and the
// remaining relay-deadline budget — so that multi-hop forwarding keeps
// end-to-end semantics without any global coordinator.
type RemoteEvent struct {
	// Class is the event channel class (core.HRT/SRT/NRT).
	Class core.Class
	// Subject is the 56-bit channel subject (identical on all segments).
	Subject binding.Subject
	// Payload is the event content.
	Payload []byte
	// Origin is the TxNode of the original publisher on the origin
	// segment. Remote peers use it for origin filtering (§2.2.1's
	// "events generated on this field bus" applied across the federation).
	Origin can.TxNode
	// OriginSeg names the segment the event was first published on. A
	// bridge drops incoming events whose OriginSeg matches its own
	// segment: the federation-level loop guard.
	OriginSeg string
	// Hops counts relay traversals so far (0 = first hop).
	Hops int
	// Budget is the remaining relay-deadline budget in virtual
	// nanoseconds. Each bridge debits the event's residence time on its
	// segment before forwarding; SRT events with an exhausted budget are
	// shed, HRT events are forwarded anyway and counted late.
	Budget sim.Duration
	// TraceID is the observability trace opened on the origin segment.
	// Segments use disjoint trace-ID bases, so adopting it downstream
	// yields one continuous trace across the federation.
	TraceID uint64
}

// Remote is a transport able to carry RemoteEvents between this segment
// and a peer (internal/relay implements it over TCP). Send is called in
// simulation-kernel context and must not block; the transport delivers
// incoming events by calling the receiver — also in kernel context (a
// network transport injects into the kernel via sim.Paced.Inject).
type Remote interface {
	// Send enqueues an event toward the peer. A non-nil error means the
	// event was refused outright (link down and class not queueable).
	Send(RemoteEvent) error
	// SetReceiver installs the callback for events arriving from the
	// peer. The transport must invoke it in kernel context.
	SetReceiver(func(RemoteEvent))
}

// RemoteBridge attaches one middleware endpoint to a Remote transport,
// federating its segment with a peer segment that runs on a different
// kernel (typically a different process, connected over TCP by
// internal/relay). For every forwarded subject it subscribes locally and
// ships matching events to the peer; events arriving from the peer are
// republished locally under the bridge's own TxNode with the origin
// trace adopted, so one trace spans every segment the event visits.
type RemoteBridge struct {
	// M is the bridge's middleware endpoint on the local segment.
	M *core.Middleware
	// R is the inter-segment transport.
	R Remote
	// Segment names the local segment (must be unique across the
	// federation; used as the loop guard).
	Segment string
	// MaxHops bounds relay traversals; events arriving with
	// Hops >= MaxHops are dropped (defence in depth behind the
	// OriginSeg guard). Zero selects the default of 8.
	MaxHops int
	// Budget is the total relay-deadline budget granted to locally
	// originated events when they leave the segment. Zero selects the
	// default of 50ms.
	Budget sim.Duration
	// RelayDeadline caps the per-hop transmission deadline assigned to a
	// republished SRT copy. Zero selects the default of 10ms.
	RelayDeadline sim.Duration

	// transit remembers, per trace ID, the metadata of events that
	// arrived from the peer and were republished locally, so a sibling
	// bridge on a transit segment can forward them onward with the
	// origin preserved and the budget debited. Entries are dropped once
	// consumed or when the table exceeds transitCap (oldest first).
	transit      map[uint64]transitEntry
	transitOrder []uint64

	forwarded   uint64
	received    uint64
	dropped     uint64
	late        uint64
	subjects    map[binding.Subject]core.Class
	subscribed  bool
	siblingsFwd []*RemoteBridge
}

type transitEntry struct {
	ev        RemoteEvent
	arrivedAt sim.Time
}

// transitCap bounds the transit table of a bridge; beyond it the oldest
// entries are evicted (their onward forwarding then restarts metadata,
// which is safe: the OriginSeg guard still holds via the fresh origin).
const transitCap = 4096

// NewRemote creates a RemoteBridge and installs its receiver on the
// transport.
func NewRemote(m *core.Middleware, r Remote, segment string) (*RemoteBridge, error) {
	if m == nil {
		return nil, errors.New("gateway: nil middleware endpoint")
	}
	if r == nil {
		return nil, errors.New("gateway: nil remote transport")
	}
	if segment == "" {
		return nil, errors.New("gateway: empty segment name")
	}
	b := &RemoteBridge{
		M: m, R: r, Segment: segment,
		MaxHops:       8,
		Budget:        50 * sim.Millisecond,
		RelayDeadline: 10 * sim.Millisecond,
		transit:       make(map[uint64]transitEntry),
		subjects:      make(map[binding.Subject]core.Class),
	}
	r.SetReceiver(b.receive)
	return b, nil
}

// Forwarded reports how many events left the segment through this bridge.
func (b *RemoteBridge) Forwarded() uint64 { return b.forwarded }

// Received reports how many events arrived from the peer and were
// republished locally.
func (b *RemoteBridge) Received() uint64 { return b.received }

// Dropped reports events shed at this bridge (loop guard, hop guard,
// exhausted SRT budget, republish failure).
func (b *RemoteBridge) Dropped() uint64 { return b.dropped }

// Late reports HRT events forwarded after their budget was exhausted.
func (b *RemoteBridge) Late() uint64 { return b.late }

// BridgeSubject is one federated subject of a bridge, for introspection.
type BridgeSubject struct {
	Subject binding.Subject
	Class   core.Class
}

// Subjects lists the subjects this bridge federates (Forward and
// Announce registrations), in subject order. Kernel context.
func (b *RemoteBridge) Subjects() []BridgeSubject {
	out := make([]BridgeSubject, 0, len(b.subjects))
	for s, c := range b.subjects {
		out = append(out, BridgeSubject{Subject: s, Class: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// LinkSiblings connects transit bridges on one segment: an event this
// bridge receives from its peer and republishes locally will, when a
// sibling's subscription picks it up, be forwarded onward with origin,
// hops and budget preserved. Call it on every bridge of a multi-homed
// segment, passing the others.
func (b *RemoteBridge) LinkSiblings(sibs ...*RemoteBridge) {
	b.siblingsFwd = append(b.siblingsFwd, sibs...)
	for _, s := range sibs {
		s.siblingsFwd = append(s.siblingsFwd, b)
	}
}

// Forward establishes federation of a subject: events of the given class
// published on the local segment (or relayed in by a sibling bridge) are
// shipped to the peer. ChannelAttrs matter for NRT (fragmentation, prio)
// and HRT (payload dimensioning) subjects; pass the zero value for SRT.
func (b *RemoteBridge) Forward(class core.Class, subject binding.Subject, attrs core.ChannelAttrs) error {
	if _, dup := b.subjects[subject]; dup {
		return fmt.Errorf("gateway: subject %d already forwarded", subject)
	}
	sub := core.SubscribeAttrs{
		// Never echo back what this bridge itself republished.
		ExcludePublishers: []can.TxNode{b.M.Node().Ctrl.Node()},
	}
	handler := func(ev core.Event, di core.DeliveryInfo) {
		b.ship(class, subject, ev, di)
	}
	var err error
	switch class {
	case core.SRT:
		var ch *core.SRTEC
		if ch, err = b.M.SRTEC(subject); err == nil {
			err = ch.Subscribe(attrs, sub, handler, nil)
		}
	case core.NRT:
		var ch *core.NRTEC
		if ch, err = b.M.NRTEC(subject); err == nil {
			err = ch.Subscribe(attrs, sub, handler, nil)
		}
	case core.HRT:
		var ch *core.HRTEC
		if ch, err = b.M.HRTEC(subject); err == nil {
			err = ch.Subscribe(attrs, sub, handler, nil)
		}
	default:
		err = fmt.Errorf("gateway: unknown class %v", class)
	}
	if err != nil {
		return err
	}
	b.subjects[subject] = class
	return nil
}

// Announce prepares the local egress side of a federated subject: the
// channel the bridge republishes incoming remote events on. Call it once
// per subject expected FROM the peer (the mirror of the peer's Forward).
func (b *RemoteBridge) Announce(class core.Class, subject binding.Subject, attrs core.ChannelAttrs) error {
	switch class {
	case core.SRT:
		ch, err := b.M.SRTEC(subject)
		if err != nil {
			return err
		}
		return ch.Announce(attrs, nil)
	case core.NRT:
		ch, err := b.M.NRTEC(subject)
		if err != nil {
			return err
		}
		return ch.Announce(attrs, nil)
	case core.HRT:
		ch, err := b.M.HRTEC(subject)
		if err != nil {
			return err
		}
		return ch.Announce(attrs, nil)
	}
	return fmt.Errorf("gateway: unknown class %v", class)
}

// ship sends one locally delivered event to the peer, minting fresh
// federation metadata for locally originated events and preserving the
// transit metadata for events that arrived through a sibling bridge.
func (b *RemoteBridge) ship(class core.Class, subject binding.Subject, ev core.Event, di core.DeliveryInfo) {
	now := b.M.K.Now()
	re := RemoteEvent{
		Class:     class,
		Subject:   subject,
		Payload:   ev.Payload,
		Origin:    di.Publisher,
		OriginSeg: b.Segment,
		Hops:      0,
		Budget:    b.Budget,
		TraceID:   ev.TraceID(),
	}
	if t, ok := b.lookupTransit(ev.TraceID()); ok {
		// Transit traffic: keep the origin, debit the residence time on
		// this segment from the remaining budget.
		re.Origin = t.ev.Origin
		re.OriginSeg = t.ev.OriginSeg
		re.Hops = t.ev.Hops
		re.Budget = t.ev.Budget - sim.Duration(now-t.arrivedAt)
	}
	if re.Budget <= 0 {
		switch class {
		case core.HRT:
			// HRT is never silently dropped: forward late, count it.
			b.late++
			b.observer().RelayFrame(re.TraceID, obs.StageRelayLate, class.String(),
				b.M.Node().Index, uint64(subject), now, "budget exhausted")
		default:
			b.dropped++
			b.observer().RelayFrame(re.TraceID, obs.StageRelayDrop, class.String(),
				b.M.Node().Index, uint64(subject), now, "budget exhausted")
			return
		}
	}
	if err := b.R.Send(re); err != nil {
		b.dropped++
		b.observer().RelayFrame(re.TraceID, obs.StageRelayDrop, class.String(),
			b.M.Node().Index, uint64(subject), now, "send: "+err.Error())
		return
	}
	b.forwarded++
	b.observer().RelayFrame(re.TraceID, obs.StageRelayTx, class.String(),
		b.M.Node().Index, uint64(subject), now,
		fmt.Sprintf("hop %d budget %v", re.Hops, re.Budget))
}

// receive handles one event arriving from the peer (kernel context). It
// applies the loop and hop guards, records transit metadata and
// republishes the event locally under the bridge's TxNode with the
// origin trace adopted.
func (b *RemoteBridge) receive(re RemoteEvent) {
	now := b.M.K.Now()
	maxHops := b.MaxHops
	if maxHops <= 0 {
		maxHops = 8
	}
	switch {
	case re.OriginSeg == b.Segment:
		b.dropped++
		b.observer().RelayFrame(re.TraceID, obs.StageRelayDrop, re.Class.String(),
			b.M.Node().Index, uint64(re.Subject), now, "loop: returned to origin segment")
		return
	case re.Hops+1 >= maxHops:
		b.dropped++
		b.observer().RelayFrame(re.TraceID, obs.StageRelayDrop, re.Class.String(),
			b.M.Node().Index, uint64(re.Subject), now, "hop limit")
		return
	}
	re.Hops++
	b.observer().RelayFrame(re.TraceID, obs.StageRelayRx, re.Class.String(),
		b.M.Node().Index, uint64(re.Subject), now,
		fmt.Sprintf("from %s hop %d budget %v", re.OriginSeg, re.Hops, re.Budget))
	b.rememberTransit(re, now)

	var err error
	switch re.Class {
	case core.SRT:
		var ch *core.SRTEC
		if ch, err = b.M.SRTEC(re.Subject); err == nil {
			local := b.M.LocalTime()
			dl := b.RelayDeadline
			if dl <= 0 {
				dl = 10 * sim.Millisecond
			}
			if re.Budget > 0 && re.Budget < dl {
				dl = re.Budget
			}
			err = ch.Publish(core.WithTraceID(core.Event{
				Subject: re.Subject,
				Payload: re.Payload,
				Attrs: core.EventAttrs{
					Deadline:   local + dl,
					Expiration: local + 2*dl,
				},
			}, re.TraceID))
		}
	case core.NRT:
		var ch *core.NRTEC
		if ch, err = b.M.NRTEC(re.Subject); err == nil {
			err = ch.Publish(core.WithTraceID(core.Event{
				Subject: re.Subject, Payload: re.Payload,
			}, re.TraceID))
		}
	case core.HRT:
		var ch *core.HRTEC
		if ch, err = b.M.HRTEC(re.Subject); err == nil {
			err = ch.Publish(core.WithTraceID(core.Event{
				Subject: re.Subject, Payload: re.Payload,
			}, re.TraceID))
		}
	default:
		err = fmt.Errorf("gateway: unknown class %v", re.Class)
	}
	if err != nil {
		b.dropped++
		b.observer().RelayFrame(re.TraceID, obs.StageRelayDrop, re.Class.String(),
			b.M.Node().Index, uint64(re.Subject), now, "republish: "+err.Error())
		return
	}
	b.received++
}

// rememberTransit records incoming federation metadata for this bridge
// and its siblings, so onward forwarding preserves origin and budget.
func (b *RemoteBridge) rememberTransit(re RemoteEvent, at sim.Time) {
	if re.TraceID == 0 {
		return
	}
	put := func(rb *RemoteBridge) {
		if _, exists := rb.transit[re.TraceID]; !exists {
			rb.transitOrder = append(rb.transitOrder, re.TraceID)
		}
		rb.transit[re.TraceID] = transitEntry{ev: re, arrivedAt: at}
		for len(rb.transitOrder) > transitCap {
			evict := rb.transitOrder[0]
			rb.transitOrder = rb.transitOrder[1:]
			delete(rb.transit, evict)
		}
	}
	put(b)
	for _, s := range b.siblingsFwd {
		put(s)
	}
}

// lookupTransit consumes the transit entry for a trace ID, if present.
func (b *RemoteBridge) lookupTransit(id uint64) (transitEntry, bool) {
	if id == 0 {
		return transitEntry{}, false
	}
	t, ok := b.transit[id]
	if ok {
		delete(b.transit, id)
	}
	return t, ok
}

// observer returns the endpoint middleware's observer (nil-safe).
func (b *RemoteBridge) observer() *obs.Observer { return b.M.Obs }
