package gateway

import (
	"bytes"
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
)

const subjTemp binding.Subject = 0x77

// rig builds two 3-node segments on one kernel, bridged at node 2 of each.
func rig(t *testing.T, seed uint64) (*sim.Kernel, *core.System, *core.System, *Bridge) {
	t.Helper()
	k := sim.NewKernel(seed)
	segA, err := core.NewSystem(core.SystemConfig{Nodes: 3, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	segB, err := core.NewSystem(core.SystemConfig{Nodes: 3, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(segA.Node(2).MW, segB.Node(2).MW, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return k, segA, segB, g
}

func TestSRTForwardAcrossSegments(t *testing.T) {
	k, segA, segB, g := rig(t, 1)
	if err := g.ForwardSRT(subjTemp, AtoB); err != nil {
		t.Fatal(err)
	}
	pub, _ := segA.Node(0).MW.SRTEC(subjTemp)
	pub.Announce(core.ChannelAttrs{}, nil)
	var got []byte
	sub, _ := segB.Node(1).MW.SRTEC(subjTemp)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(ev core.Event, _ core.DeliveryInfo) { got = ev.Payload }, nil)
	k.At(sim.Millisecond, func() {
		now := segA.Node(0).MW.LocalTime()
		pub.Publish(core.Event{Subject: subjTemp, Payload: []byte{0xAB, 0xCD},
			Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
	})
	k.Run(1 * sim.Second)
	if !bytes.Equal(got, []byte{0xAB, 0xCD}) {
		t.Fatalf("cross-segment payload = %v", got)
	}
	if g.Forwarded() != 1 || g.Dropped() != 0 {
		t.Fatalf("forwarded=%d dropped=%d", g.Forwarded(), g.Dropped())
	}
}

func TestBidirectionalNoLoop(t *testing.T) {
	k, segA, segB, g := rig(t, 2)
	if err := g.ForwardSRT(subjTemp, Both); err != nil {
		t.Fatal(err)
	}
	pub, _ := segA.Node(0).MW.SRTEC(subjTemp)
	pub.Announce(core.ChannelAttrs{}, nil)
	gotB := 0
	sub, _ := segB.Node(1).MW.SRTEC(subjTemp)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { gotB++ }, nil)
	gotA := 0
	subA, _ := segA.Node(1).MW.SRTEC(subjTemp)
	subA.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { gotA++ }, nil)
	k.At(sim.Millisecond, func() {
		now := segA.Node(0).MW.LocalTime()
		pub.Publish(core.Event{Subject: subjTemp, Payload: []byte{1},
			Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
	})
	k.Run(1 * sim.Second)
	if gotB != 1 {
		t.Fatalf("segment B deliveries = %d, want 1", gotB)
	}
	// Segment A's local subscriber sees the original only — the forwarded
	// copy must not bounce back.
	if gotA != 1 {
		t.Fatalf("segment A deliveries = %d, want 1 (no loop)", gotA)
	}
	if g.Forwarded() != 1 {
		t.Fatalf("forwarded = %d, want 1 (no ping-pong)", g.Forwarded())
	}
}

func TestOriginFiltering(t *testing.T) {
	// The paper's §2.2.1 example: a subscriber interested only in events
	// from publishers on its own field bus filters out the gateway.
	k, segA, segB, g := rig(t, 3)
	if err := g.ForwardSRT(subjTemp, AtoB); err != nil {
		t.Fatal(err)
	}
	// Remote publisher on A and a local publisher on B share the subject.
	pubA, _ := segA.Node(0).MW.SRTEC(subjTemp)
	pubA.Announce(core.ChannelAttrs{}, nil)
	pubB, _ := segB.Node(0).MW.SRTEC(subjTemp)
	pubB.Announce(core.ChannelAttrs{}, nil)

	gwNode := segB.Node(2).Ctrl.Node()
	localOnly, remoteToo := 0, 0
	subLocal, _ := segB.Node(1).MW.SRTEC(subjTemp)
	subLocal.Subscribe(core.ChannelAttrs{},
		core.SubscribeAttrs{ExcludePublishers: []can.TxNode{gwNode}},
		func(core.Event, core.DeliveryInfo) { localOnly++ }, nil)
	// A second system-wide subscriber on the same node would share channel
	// state; use a dedicated node for the unfiltered view... node 0 also
	// publishes, so subscribe there.
	subAll, _ := segB.Node(0).MW.SRTEC(subjTemp)
	subAll.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { remoteToo++ }, nil)

	k.At(sim.Millisecond, func() {
		nowA := segA.Node(0).MW.LocalTime()
		pubA.Publish(core.Event{Subject: subjTemp, Payload: []byte{1},
			Attrs: core.EventAttrs{Deadline: nowA + 5*sim.Millisecond}})
		nowB := segB.Node(0).MW.LocalTime()
		pubB.Publish(core.Event{Subject: subjTemp, Payload: []byte{2},
			Attrs: core.EventAttrs{Deadline: nowB + 5*sim.Millisecond}})
	})
	k.Run(1 * sim.Second)
	if localOnly != 1 {
		t.Fatalf("origin-filtered subscriber got %d, want 1 (local only)", localOnly)
	}
	// The unfiltered subscriber on node 0 sees the forwarded remote event
	// (it does not receive its own local publication back: CAN has no
	// self-reception).
	if remoteToo != 1 {
		t.Fatalf("unfiltered subscriber got %d, want 1 (the forwarded copy)", remoteToo)
	}
}

func TestNRTBulkAcrossSegments(t *testing.T) {
	k, segA, segB, g := rig(t, 4)
	attrs := core.ChannelAttrs{Prio: 253, Fragmentation: true}
	if err := g.ForwardNRT(0x78, attrs, AtoB); err != nil {
		t.Fatal(err)
	}
	pub, _ := segA.Node(0).MW.NRTEC(0x78)
	if err := pub.Announce(attrs, nil); err != nil {
		t.Fatal(err)
	}
	var got []byte
	sub, _ := segB.Node(1).MW.NRTEC(0x78)
	sub.Subscribe(attrs, core.SubscribeAttrs{},
		func(ev core.Event, _ core.DeliveryInfo) { got = ev.Payload }, nil)
	img := make([]byte, 2000)
	for i := range img {
		img[i] = byte(i * 13)
	}
	k.At(sim.Millisecond, func() {
		pub.Publish(core.Event{Subject: 0x78, Payload: img})
	})
	k.Run(2 * sim.Second)
	if !bytes.Equal(got, img) {
		t.Fatalf("bulk cross-segment transfer failed: %d bytes", len(got))
	}
}

func TestSegmentIndependence(t *testing.T) {
	// Traffic on segment A must not consume bandwidth on segment B: the
	// two buses are independent media sharing only virtual time.
	k, segA, segB, _ := rig(t, 5)
	pub, _ := segA.Node(0).MW.SRTEC(0x79)
	pub.Announce(core.ChannelAttrs{}, nil)
	var flood func()
	n := 0
	flood = func() {
		if n >= 1000 {
			return
		}
		n++
		now := segA.Node(0).MW.LocalTime()
		pub.Publish(core.Event{Subject: 0x79, Payload: make([]byte, 8),
			Attrs: core.EventAttrs{Deadline: now + sim.Millisecond}})
		k.After(100*sim.Microsecond, flood)
	}
	k.At(0, flood)
	k.Run(200 * sim.Millisecond)
	if segB.Bus.Stats().FramesOK != 0 {
		t.Fatalf("segment B carried %d frames of segment A's traffic", segB.Bus.Stats().FramesOK)
	}
	if segA.Bus.Stats().FramesOK == 0 {
		t.Fatal("segment A idle")
	}
}

func TestMismatchedKernelsError(t *testing.T) {
	segA, _ := core.NewSystem(core.SystemConfig{Nodes: 2, Seed: 1})
	segB, _ := core.NewSystem(core.SystemConfig{Nodes: 2, Seed: 2})
	if _, err := New(segA.Node(0).MW, segB.Node(0).MW, 0); err == nil {
		t.Fatal("bridging across kernels accepted")
	}
	if _, err := New(nil, segB.Node(0).MW, 0); err == nil {
		t.Fatal("nil endpoint accepted")
	}
}

func TestHRTForwardAcrossSegments(t *testing.T) {
	k := sim.NewKernel(9)
	calCfg := calendar.DefaultConfig()
	// Segment A: sensor (node 0) owns the slot. Segment B: the gateway
	// endpoint (node 2) owns the egress slot.
	calA, err := calendar.PackSequential(calCfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	calB, err := calendar.PackSequential(calCfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(subjTemp), Publisher: 2, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	// Give segment B a half-round phase shift via the epoch so the egress
	// slot trails the ingress delivery.
	segA, err := core.NewSystem(core.SystemConfig{Nodes: 3, Kernel: k, Calendar: calA, Epoch: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	segB, err := core.NewSystem(core.SystemConfig{Nodes: 3, Kernel: k, Calendar: calB, Epoch: 6 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(segA.Node(2).MW, segB.Node(2).MW, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ForwardHRT(subjTemp, core.ChannelAttrs{Payload: 7, Periodic: true}, AtoB); err != nil {
		t.Fatal(err)
	}
	if err := g.ForwardHRT(subjTemp, core.ChannelAttrs{Payload: 7}, Both); err == nil {
		t.Fatal("bidirectional HRT forwarding accepted")
	}

	pub, _ := segA.Node(0).MW.HRTEC(subjTemp)
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	var deliveredAt []sim.Time
	late := 0
	sub, _ := segB.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(_ core.Event, di core.DeliveryInfo) {
			deliveredAt = append(deliveredAt, di.DeliveredAt)
			if di.Late {
				late++
			}
		}, nil)
	const rounds = 20
	for r := int64(0); r < rounds; r++ {
		k.At(segA.Cfg.Epoch+sim.Time(r)*calA.Round-100*sim.Microsecond, func() {
			pub.Publish(core.Event{Subject: subjTemp, Payload: []byte{1}})
		})
	}
	k.Run(segB.Cfg.Epoch + rounds*calB.Round - 1)
	if len(deliveredAt) < rounds-1 {
		t.Fatalf("cross-segment HRT deliveries = %d", len(deliveredAt))
	}
	if late != 0 {
		t.Fatalf("late deliveries = %d", late)
	}
	// Each hop is de-jittered, so end-to-end deliveries on B are exactly
	// one round apart.
	for i := 1; i < len(deliveredAt); i++ {
		if d := deliveredAt[i] - deliveredAt[i-1]; d != calB.Round {
			t.Fatalf("cross-segment period %v at %d, want %v", d, i, calB.Round)
		}
	}
	if g.Forwarded() < uint64(rounds-1) {
		t.Fatalf("forwarded = %d", g.Forwarded())
	}
}

func TestForwardErrorsPropagate(t *testing.T) {
	_, segA, segB, g := rig(t, 6)
	// HRT forwarding without any calendar must surface ErrNoSlot.
	if err := g.ForwardHRT(0x90, core.ChannelAttrs{Payload: 7}, AtoB); err == nil {
		t.Fatal("HRT forward without calendar accepted")
	}
	// Stopped middleware rejects SRT/NRT forwarding setup.
	segB.Node(2).MW.Stop()
	if err := g.ForwardSRT(0x91, AtoB); err == nil {
		t.Fatal("forward into stopped middleware accepted")
	}
	if err := g.ForwardNRT(0x92, core.ChannelAttrs{Fragmentation: true}, AtoB); err == nil {
		t.Fatal("NRT forward into stopped middleware accepted")
	}
	segA.Node(2).MW.Stop()
	if err := g.ForwardSRT(0x93, BtoA); err == nil {
		t.Fatal("forward from stopped middleware accepted")
	}
}
