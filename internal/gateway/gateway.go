// Package gateway bridges event channels across bus segments. The paper
// assumes "publishers and subscribers are connected by a channel which
// spans multiple networks, e.g. a field bus, a wireless network and a
// wired wide area network" (§2.2.1, elaborated in its ref [12] — the
// CAN↔Internet architecture), and uses origin attributes so a subscriber
// can restrict notifications to events generated on its own segment.
package gateway

import (
	"errors"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
)

// Bridge owns one middleware instance on each of two segments that
// share a simulation kernel. For every forwarded subject it subscribes on
// one side and republishes on the other under its own TxNode, after a
// configurable relay latency. Because forwarded events carry the
// gateway's node number, origin filtering on the remote segment is the
// ordinary publisher filter: subscribers exclude (or select) the
// gateway's TxNode — exactly the mechanism §2.2.1 describes.
type Bridge struct {
	// A and B are the gateway's middleware endpoints on the two segments.
	A, B *core.Middleware
	// Delay is the store-and-forward latency added per hop (protocol
	// conversion, queueing in the gateway CPU).
	Delay sim.Duration
	// RelayDeadline is the transmission deadline budget given to the
	// re-published copy of an SRT event on the remote segment, measured
	// from the moment the gateway forwards it. Deadlines are not carried
	// on the CAN wire, so per-segment budgets are assigned at each hop —
	// the standard decomposition for multi-network channels.
	RelayDeadline sim.Duration

	// ExcludeA and ExcludeB list additional publisher TxNodes the bridge
	// ignores on the respective ingress segment, beyond its own endpoint
	// node (which is always excluded). They make multi-bridge topologies
	// loop-safe: in a ring of Both-direction bridges, each bridge lists
	// the other gateways' TxNodes on its segments, so only events that
	// originate locally on a segment are ever forwarded off it — a copy
	// arriving through one bridge can never be re-forwarded by another.
	// Set them before any Forward* call; later changes have no effect on
	// established forwarding.
	ExcludeA, ExcludeB []can.TxNode

	forwarded uint64
	dropped   uint64
}

// Direction selects which way a subject flows through the bridge.
type Direction int

const (
	// AtoB forwards events published on segment A to segment B.
	AtoB Direction = iota
	// BtoA forwards events published on segment B to segment A.
	BtoA
	// Both forwards in both directions (loop-safe: the gateway never
	// re-forwards events it injected itself).
	Both
)

// New creates a bridge between two middleware endpoints that must live on
// the same simulation kernel (segments that do not share a kernel are
// federated over a Remote transport instead; see RemoteBridge).
func New(a, b *core.Middleware, delay sim.Duration) (*Bridge, error) {
	if a == nil || b == nil {
		return nil, errors.New("gateway: nil endpoint")
	}
	if a.K != b.K {
		return nil, errors.New("gateway: endpoints on different kernels (use RemoteBridge to federate separate kernels)")
	}
	return &Bridge{A: a, B: b, Delay: delay, RelayDeadline: 10 * sim.Millisecond}, nil
}

// ingressExcludes returns the publishers to ignore when subscribing on
// `from`: the bridge's own endpoint node there plus the configured
// per-side exclusion list.
func (g *Bridge) ingressExcludes(from *core.Middleware) []can.TxNode {
	extra := g.ExcludeA
	if from == g.B {
		extra = g.ExcludeB
	}
	ex := make([]can.TxNode, 0, len(extra)+1)
	ex = append(ex, from.Node().Ctrl.Node())
	ex = append(ex, extra...)
	return ex
}

// Forwarded reports how many events crossed the bridge.
func (g *Bridge) Forwarded() uint64 { return g.forwarded }

// Dropped reports forwarding failures (republish errors).
func (g *Bridge) Dropped() uint64 { return g.dropped }

// ForwardSRT establishes bidirectional (or one-way) forwarding of a soft
// real-time subject.
func (g *Bridge) ForwardSRT(subject binding.Subject, dir Direction) error {
	if dir == AtoB || dir == Both {
		if err := g.forwardSRTOne(g.A, g.B, subject); err != nil {
			return err
		}
	}
	if dir == BtoA || dir == Both {
		if err := g.forwardSRTOne(g.B, g.A, subject); err != nil {
			return err
		}
	}
	return nil
}

func (g *Bridge) forwardSRTOne(from, to *core.Middleware, subject binding.Subject) error {
	out, err := to.SRTEC(subject)
	if err != nil {
		return err
	}
	if err := out.Announce(core.ChannelAttrs{}, nil); err != nil {
		return err
	}
	in, err := from.SRTEC(subject)
	if err != nil {
		return err
	}
	return in.Subscribe(core.ChannelAttrs{},
		core.SubscribeAttrs{
			// Never re-forward what this bridge injected on `from`, nor
			// what a sibling bridge relayed in (ring safety).
			ExcludePublishers: g.ingressExcludes(from),
		},
		func(ev core.Event, _ core.DeliveryInfo) {
			g.relay(to, func() error {
				now := to.LocalTime()
				return out.Publish(core.WithTraceID(core.Event{
					Subject: subject,
					Payload: ev.Payload,
					Attrs: core.EventAttrs{
						Deadline:   now + g.RelayDeadline,
						Expiration: now + 2*g.RelayDeadline,
					},
				}, ev.TraceID()))
			})
		}, nil)
}

// ForwardNRT establishes forwarding of a non real-time subject
// (fragmenting channels reassemble on the ingress segment and re-fragment
// on the egress one).
func (g *Bridge) ForwardNRT(subject binding.Subject, attrs core.ChannelAttrs, dir Direction) error {
	if dir == AtoB || dir == Both {
		if err := g.forwardNRTOne(g.A, g.B, subject, attrs); err != nil {
			return err
		}
	}
	if dir == BtoA || dir == Both {
		if err := g.forwardNRTOne(g.B, g.A, subject, attrs); err != nil {
			return err
		}
	}
	return nil
}

func (g *Bridge) forwardNRTOne(from, to *core.Middleware, subject binding.Subject, attrs core.ChannelAttrs) error {
	out, err := to.NRTEC(subject)
	if err != nil {
		return err
	}
	if err := out.Announce(attrs, nil); err != nil {
		return err
	}
	in, err := from.NRTEC(subject)
	if err != nil {
		return err
	}
	return in.Subscribe(attrs,
		core.SubscribeAttrs{
			ExcludePublishers: g.ingressExcludes(from),
		},
		func(ev core.Event, _ core.DeliveryInfo) {
			g.relay(to, func() error {
				return out.Publish(core.WithTraceID(
					core.Event{Subject: subject, Payload: ev.Payload}, ev.TraceID()))
			})
		}, nil)
}

// ForwardHRT forwards a hard real-time subject from one segment into a
// reserved slot on the other. Unlike SRT/NRT forwarding this needs
// off-line configuration on the egress side: the destination calendar
// must reserve a slot for (subject, gateway node). The relayed channel
// keeps hard real-time semantics per segment — ingress delivery at the
// ingress deadline, egress delivery at the egress slot deadline — so the
// end-to-end latency is the sum of the two reserved bounds plus the relay
// delay, each hop individually jitter-free. Only one direction per call.
func (g *Bridge) ForwardHRT(subject binding.Subject, attrs core.ChannelAttrs, dir Direction) error {
	if dir == Both {
		return errors.New("gateway: HRT forwarding is per-direction (each needs its own slot)")
	}
	from, to := g.A, g.B
	if dir == BtoA {
		from, to = g.B, g.A
	}
	out, err := to.HRTEC(subject)
	if err != nil {
		return err
	}
	if err := out.Announce(attrs, nil); err != nil {
		return err
	}
	in, err := from.HRTEC(subject)
	if err != nil {
		return err
	}
	return in.Subscribe(attrs,
		core.SubscribeAttrs{
			ExcludePublishers: g.ingressExcludes(from),
		},
		func(ev core.Event, _ core.DeliveryInfo) {
			g.relay(to, func() error {
				return out.Publish(core.WithTraceID(
					core.Event{Subject: subject, Payload: ev.Payload}, ev.TraceID()))
			})
		}, nil)
}

// relay schedules the republication after the store-and-forward delay.
func (g *Bridge) relay(to *core.Middleware, publish func() error) {
	to.K.After(g.Delay, func() {
		if err := publish(); err != nil {
			g.dropped++
			return
		}
		g.forwarded++
	})
}
