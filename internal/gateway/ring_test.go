package gateway

import (
	"testing"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
)

// TestRingTopologyNoLoopStorm closes three segments into a ring of
// Both-direction bridges and proves the exclusion lists make it
// storm-free: one publication yields exactly one delivery per segment
// and a bounded number of bus frames, instead of copies circulating
// forever.
//
// Topology (4 nodes per segment; nodes 2 and 3 host gateway endpoints):
//
//	A ── G1 ── B
//	 \         |
//	  G3       G2
//	   \       |
//	    ────  C
//
// Each bridge excludes, on each of its segments, the other bridge's
// endpoint TxNode there — so only locally originated events are ever
// forwarded off a segment.
func TestRingTopologyNoLoopStorm(t *testing.T) {
	const subj binding.Subject = 0x7A
	k := sim.NewKernel(11)
	newSeg := func() *core.System {
		s, err := core.NewSystem(core.SystemConfig{Nodes: 4, Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	segA, segB, segC := newSeg(), newSeg(), newSeg()

	mustNew := func(a, b *core.Middleware) *Bridge {
		g, err := New(a, b, 50*sim.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1 := mustNew(segA.Node(2).MW, segB.Node(2).MW) // A↔B
	g2 := mustNew(segB.Node(3).MW, segC.Node(2).MW) // B↔C
	g3 := mustNew(segC.Node(3).MW, segA.Node(3).MW) // C↔A

	tx := func(s *core.System, n int) can.TxNode { return s.Node(n).Ctrl.Node() }
	g1.ExcludeA = []can.TxNode{tx(segA, 3)} // ignore G3's injections on A
	g1.ExcludeB = []can.TxNode{tx(segB, 3)} // ignore G2's injections on B
	g2.ExcludeA = []can.TxNode{tx(segB, 2)} // ignore G1's injections on B
	g2.ExcludeB = []can.TxNode{tx(segC, 3)} // ignore G3's injections on C
	g3.ExcludeA = []can.TxNode{tx(segC, 2)} // ignore G2's injections on C
	g3.ExcludeB = []can.TxNode{tx(segA, 2)} // ignore G1's injections on A

	for _, g := range []*Bridge{g1, g2, g3} {
		if err := g.ForwardSRT(subj, Both); err != nil {
			t.Fatal(err)
		}
	}

	pub, _ := segA.Node(0).MW.SRTEC(subj)
	if err := pub.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	counts := map[string]*int{}
	subscribe := func(name string, s *core.System) {
		n := new(int)
		counts[name] = n
		ch, _ := s.Node(1).MW.SRTEC(subj)
		ch.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(core.Event, core.DeliveryInfo) { *n++ }, nil)
	}
	subscribe("A", segA)
	subscribe("B", segB)
	subscribe("C", segC)

	const pubs = 5
	for i := 0; i < pubs; i++ {
		at := sim.Time(i+1) * 20 * sim.Millisecond
		k.At(at, func() {
			now := segA.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: subj, Payload: []byte{0x5A},
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
	}
	// Run far past the last publication: a loop storm would keep the
	// buses busy indefinitely and inflate every counter below.
	k.Run(2 * sim.Second)

	for name, n := range counts {
		if *n != pubs {
			t.Errorf("segment %s deliveries = %d, want %d (ring must neither storm nor drop)", name, *n, pubs)
		}
	}
	// A's events reach B via G1 and C via G3; nothing circulates onward.
	if got := g1.Forwarded() + g2.Forwarded() + g3.Forwarded(); got != 2*pubs {
		t.Errorf("total ring forwards = %d, want %d", got, 2*pubs)
	}
	// Bounded bus activity: each publication is 1 frame on A (original) +
	// 1 on B + 1 on C (forwarded) + 1 more on A (G3's BtoA copy of ...
	// nothing: G3 ignores G2's injections, so A carries only originals
	// plus nothing forwarded back). Allow generous slack for binding
	// chatter but rule out a storm (which would be thousands of frames).
	total := segA.Bus.Stats().FramesOK + segB.Bus.Stats().FramesOK + segC.Bus.Stats().FramesOK
	if total > uint64(pubs*10) {
		t.Errorf("ring carried %d frames for %d publications — loop storm", total, pubs)
	}
}
