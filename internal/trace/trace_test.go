package trace

import (
	"strings"
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

func ev(at sim.Time, kind can.TraceKind, prio can.Prio) can.TraceEvent {
	return can.TraceEvent{
		Kind: kind, At: at,
		Frame:   can.Frame{ID: can.MakeID(prio, 9, 1110), Data: []byte{0x11, 0x22, 0x33}},
		Sender:  5,
		Recv:    7,
		Attempt: 1,
	}
}

func TestRingBasic(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 5; i++ {
		r.Record(ev(sim.Time(i), can.TraceTxOK, 8))
	}
	es := r.Entries()
	if len(es) != 5 {
		t.Fatalf("entries = %d", len(es))
	}
	for i, e := range es {
		if e.At != sim.Time(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(sim.Time(i), can.TraceTxOK, 8))
	}
	es := r.Entries()
	if len(es) != 4 {
		t.Fatalf("entries = %d", len(es))
	}
	for i, e := range es {
		if e.At != sim.Time(6+i) {
			t.Fatalf("wrap kept wrong events: %v", es)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	r.Filter = func(e can.TraceEvent) bool { return e.Kind == can.TraceTxError }
	r.Record(ev(1, can.TraceTxOK, 8))
	r.Record(ev(2, can.TraceTxError, 8))
	r.Record(ev(3, can.TraceRx, 8))
	if got := r.Entries(); len(got) != 1 || got[0].Kind != can.TraceTxError {
		t.Fatalf("filtered entries = %v", got)
	}
	if r.Total() != 3 {
		t.Fatalf("total should count offered events: %d", r.Total())
	}
}

// TestRingFilterEvictionAccounting pins down the Total/Recorded/Entries
// relationship when a filter and evictions are both active: Total counts
// every offer, Recorded counts filter survivors, and Recorded −
// len(Entries) is the eviction count.
func TestRingFilterEvictionAccounting(t *testing.T) {
	r := NewRing(3)
	r.Filter = func(e can.TraceEvent) bool { return e.Kind == can.TraceTxOK }
	for i := 0; i < 10; i++ {
		kind := can.TraceTxOK
		if i%2 == 1 {
			kind = can.TraceRx
		}
		r.Record(ev(sim.Time(i), kind, 8))
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Recorded() != 5 {
		t.Fatalf("Recorded = %d, want 5 (filter survivors)", r.Recorded())
	}
	es := r.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d, want capacity 3", len(es))
	}
	if evicted := r.Recorded() - uint64(len(es)); evicted != 2 {
		t.Fatalf("evictions = %d, want 2", evicted)
	}
	// The survivors kept are the most recent ones that passed the filter.
	for i, e := range es {
		if want := sim.Time(4 + 2*i); e.At != want {
			t.Fatalf("entry %d at %d, want %d", i, e.At, want)
		}
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(1, can.TraceTxOK, 8))
	if len(r.Entries()) != 1 {
		t.Fatal("minimum capacity of 1 not enforced")
	}
}

func TestFormat(t *testing.T) {
	line := Format(ev(1500*sim.Microsecond, can.TraceRx, 8))
	for _, want := range []string{"0.001500000", "[3] 11 22 33", "RX", "n5->n7", "prio=8", "node=9", "etag=1110"} {
		if !strings.Contains(line, want) {
			t.Fatalf("Format missing %q: %q", want, line)
		}
	}
	// Retries annotated.
	e := ev(0, can.TraceTxError, 8)
	e.Attempt = 3
	if !strings.Contains(Format(e), "try=3") {
		t.Fatal("attempt annotation missing")
	}
	if !strings.Contains(Format(e), "TX-ERR") {
		t.Fatal("kind label missing")
	}
}

// TestFormatEdgeCases covers the rendering corners: unknown kinds,
// empty payloads, retry annotation and whole-second timestamps.
func TestFormatEdgeCases(t *testing.T) {
	// Unknown kind renders as "?".
	e := ev(0, can.TraceKind(99), 8)
	if !strings.Contains(Format(e), "?") {
		t.Fatalf("unknown kind not rendered as ?: %q", Format(e))
	}

	// Zero-length payload: "[0]" with no data bytes before the kind.
	e = ev(0, can.TraceTxOK, 8)
	e.Frame.Data = nil
	if line := Format(e); !strings.Contains(line, "[0]  TX-OK") {
		t.Fatalf("empty payload rendering: %q", line)
	}

	// Attempt > 1 gains a try= suffix; attempt 1 must not.
	e = ev(0, can.TraceTxOK, 8)
	e.Attempt = 2
	if line := Format(e); !strings.HasSuffix(line, "try=2") {
		t.Fatalf("retry annotation: %q", line)
	}
	e.Attempt = 1
	if line := Format(e); strings.Contains(line, "try=") {
		t.Fatalf("attempt 1 must not be annotated: %q", line)
	}

	// Timestamps at and past one second keep nanosecond alignment.
	e = ev(sim.Time(2*sim.Second+sim.Nanosecond*42), can.TraceTxOK, 8)
	if line := Format(e); !strings.HasPrefix(line, "2.000000042") {
		t.Fatalf("second-scale timestamp: %q", line)
	}

	// Arbitration kinds have distinct labels.
	if !strings.Contains(Format(ev(0, can.TraceArbWin, 8)), "ARB-WIN") {
		t.Fatal("ARB-WIN label missing")
	}
	if !strings.Contains(Format(ev(0, can.TraceArbLoss, 8)), "ARB-LOSS") {
		t.Fatal("ARB-LOSS label missing")
	}
}

func TestHookChainsAndDump(t *testing.T) {
	r := NewRing(8)
	called := 0
	hook := r.Hook(func(can.TraceEvent) { called++ })
	hook(ev(1, can.TraceTxStart, 8))
	hook(ev(2, can.TraceTxOK, 8))
	if called != 2 || len(r.Entries()) != 2 {
		t.Fatalf("chain broken: called=%d entries=%d", called, len(r.Entries()))
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 2 {
		t.Fatalf("dump = %q", sb.String())
	}
}

func TestRingOnLiveBus(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	bus.Attach(0)
	bus.Attach(1)
	r := NewRing(16)
	bus.Trace = r.Hook(nil)
	bus.Controller(0).Submit(can.Frame{ID: can.MakeID(5, 0, 7), Data: []byte{1}}, can.SubmitOpts{})
	k.RunUntilIdle()
	es := r.Entries()
	// TX-START, TX-OK, RX.
	if len(es) != 3 {
		t.Fatalf("live trace entries = %d", len(es))
	}
	if es[0].Kind != can.TraceTxStart || es[2].Kind != can.TraceRx {
		t.Fatalf("unexpected sequence: %v %v %v", es[0].Kind, es[1].Kind, es[2].Kind)
	}
}
