// Package trace records and renders bus activity in a candump-like text
// format, giving the simulated CAN segment the observability a real one
// would have from a bus monitor. A bounded Ring can be installed as (or
// chained into) a Bus's Trace hook; its contents render as one line per
// event with virtual timestamp, decoded identifier fields and payload.
package trace

import (
	"fmt"
	"io"
	"strings"

	"canec/internal/can"
)

// Ring is a bounded in-memory recorder of bus trace events.
type Ring struct {
	buf      []can.TraceEvent
	next     int
	full     bool
	total    uint64
	recorded uint64
	// Filter, if non-nil, selects which events are recorded.
	Filter func(can.TraceEvent) bool
}

// NewRing returns a recorder keeping the most recent n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]can.TraceEvent, n)}
}

// Record stores one event (dropping the oldest when full). Every offer
// counts toward Total; only events passing the filter count toward
// Recorded and enter the buffer.
func (r *Ring) Record(e can.TraceEvent) {
	r.total++
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.recorded++
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Hook returns a Bus.Trace function that records into the ring and then
// calls prev (which may be nil), so rings compose with existing hooks.
func (r *Ring) Hook(prev func(can.TraceEvent)) func(can.TraceEvent) {
	return func(e can.TraceEvent) {
		r.Record(e)
		if prev != nil {
			prev(e)
		}
	}
}

// Total reports how many events were offered to the ring, whether or not
// they were kept: it counts filtered-out events and events that have since
// been evicted by newer ones. Use Recorded for the count that passed the
// filter.
func (r *Ring) Total() uint64 { return r.total }

// Recorded reports how many events passed the filter and were stored,
// including ones the ring has since evicted. Recorded − len(Entries()) is
// therefore the number of evictions so far.
func (r *Ring) Recorded() uint64 { return r.recorded }

// Entries returns the recorded events in arrival order.
func (r *Ring) Entries() []can.TraceEvent {
	if !r.full {
		out := make([]can.TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]can.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// kindLabel renders the event kind.
func kindLabel(k can.TraceKind) string {
	switch k {
	case can.TraceTxStart:
		return "TX-START"
	case can.TraceTxOK:
		return "TX-OK"
	case can.TraceTxError:
		return "TX-ERR"
	case can.TraceTxAbort:
		return "TX-ABORT"
	case can.TraceRx:
		return "RX"
	case can.TraceArbWin:
		return "ARB-WIN"
	case can.TraceArbLoss:
		return "ARB-LOSS"
	}
	return "?"
}

// Format renders one event as a single line:
//
//	0.012345678  08123456  [3] 11 22 33  TX-OK    n5  (prio=8 node=9 etag=1110) try=1
func Format(e can.TraceEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d.%09d  %08X  [%d]",
		int64(e.At)/1e9, int64(e.At)%1e9, uint32(e.Frame.ID), len(e.Frame.Data))
	for _, d := range e.Frame.Data {
		fmt.Fprintf(&b, " %02X", d)
	}
	fmt.Fprintf(&b, "  %-8s n%d", kindLabel(e.Kind), e.Sender)
	if e.Kind == can.TraceRx {
		fmt.Fprintf(&b, "->n%d", e.Recv)
	}
	fmt.Fprintf(&b, "  (prio=%d node=%d etag=%d)",
		e.Frame.ID.Prio(), e.Frame.ID.TxNode(), e.Frame.ID.Etag())
	if e.Attempt > 1 {
		fmt.Fprintf(&b, " try=%d", e.Attempt)
	}
	return b.String()
}

// Dump writes all recorded events, one Format line each.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Entries() {
		if _, err := fmt.Fprintln(w, Format(e)); err != nil {
			return err
		}
	}
	return nil
}
