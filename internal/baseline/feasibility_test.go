package baseline

import (
	"testing"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/workload"
)

func ftWorst(p int) sim.Duration {
	return can.BitTime(can.WorstCaseBits(p), can.DefaultBitRate)
}

func TestCheckMixedFeasible(t *testing.T) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.Plan(cfg, []calendar.Request{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := []workload.Stream{
		{Period: 5 * sim.Millisecond, RelDeadline: 5 * sim.Millisecond, Payload: 8},
		{Period: 10 * sim.Millisecond, RelDeadline: 8 * sim.Millisecond, Payload: 8},
	}
	f := CheckMixed(cal, streams, ftWorst)
	if !f.Feasible {
		t.Fatalf("light set infeasible: %+v", f)
	}
	if f.HRTShare <= 0 || f.SRTDemand <= 0 || f.MinDeadline != 5*sim.Millisecond {
		t.Fatalf("metrics wrong: %+v", f)
	}
}

func TestCheckMixedOverload(t *testing.T) {
	streams := []workload.Stream{
		{Period: 300 * sim.Microsecond, RelDeadline: 300 * sim.Microsecond, Payload: 8},
		{Period: 300 * sim.Microsecond, RelDeadline: 300 * sim.Microsecond, Payload: 8},
	}
	f := CheckMixed(nil, streams, ftWorst)
	if f.Feasible {
		t.Fatalf("overloaded set passed: %+v", f)
	}
	if f.Reason == "" {
		t.Fatal("no reason given")
	}
}

func TestCheckMixedResidualMatters(t *testing.T) {
	// A set that fits an empty bus but not the residual after a heavy
	// calendar.
	// Demand ≈ 0.64: fine alone (0.64 + blocking ≈ 0.72 ≤ 1), infeasible
	// against the ≈0.40 residual left by the 60% calendar below.
	streams := []workload.Stream{
		{Period: 250 * sim.Microsecond, RelDeadline: 2 * sim.Millisecond, Payload: 8},
	}
	if f := CheckMixed(nil, streams, ftWorst); !f.Feasible {
		t.Fatalf("set should fit an empty bus: %+v", f)
	}
	cfg := calendar.DefaultConfig()
	var reqs []calendar.Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, calendar.Request{
			Subject: uint64(i + 1), Publisher: can.TxNode(i), Payload: 8,
			Period: 10 * sim.Millisecond,
		})
	}
	cal, err := calendar.Plan(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if f := CheckMixed(cal, streams, ftWorst); f.Feasible {
		t.Fatalf("set passed despite %.0f%% reservation: %+v", 100*cal.Utilization(), f)
	}
}

func TestCheckMixedBadDeadline(t *testing.T) {
	f := CheckMixed(nil, []workload.Stream{{Period: sim.Millisecond, Payload: 8}}, ftWorst)
	if f.Feasible || f.Reason == "" {
		t.Fatalf("zero deadline accepted: %+v", f)
	}
}

// TestFeasibilityPredictsSimulation cross-validates the analysis with the
// simulator: a set certified feasible must simulate with (near-)zero
// misses.
func TestFeasibilityPredictsSimulation(t *testing.T) {
	streams := []workload.Stream{
		{Node: 0, Period: 2 * sim.Millisecond, RelDeadline: 2 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 4 * sim.Millisecond, RelDeadline: 4 * sim.Millisecond, Payload: 8},
		{Node: 2, Period: 8 * sim.Millisecond, RelDeadline: 8 * sim.Millisecond, Payload: 8},
	}
	f := CheckMixed(nil, streams, ftWorst)
	if !f.Feasible {
		t.Fatalf("set infeasible: %+v", f)
	}
	jobs := workload.GenJobs(sim.NewRNG(3), streams, sim.Second)
	out := RunEDF(streams, jobs, core.DefaultBands(), 3, 2*sim.Second)
	if r := out.MissRatio(); r != 0 {
		t.Fatalf("feasible set missed %.1f%% in simulation", 100*r)
	}
}
