package baseline

import (
	"testing"

	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/workload"
)

func TestDeadlineMonotonic(t *testing.T) {
	ds := []sim.Duration{30, 10, 20}
	p, err := DeadlineMonotonic(ds, 2, 250)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 2 || p[2] != 3 || p[0] != 4 {
		t.Fatalf("priorities = %v", p)
	}
	if _, err := DeadlineMonotonic(make([]sim.Duration, 10), 1, 5); err == nil {
		t.Fatal("overfull band accepted")
	}
}

func TestWCRTSingleStream(t *testing.T) {
	m := MsgSpec{Prio: 5, Period: 10 * sim.Millisecond, Payload: 8}
	r, err := WCRT([]MsgSpec{m}, m, can.DefaultBitRate)
	if err != nil {
		t.Fatal(err)
	}
	// Alone on the bus: R = C (160 µs).
	if r != 160*sim.Microsecond {
		t.Fatalf("WCRT = %v, want 160µs", r)
	}
}

func TestWCRTBlockingAndInterference(t *testing.T) {
	hi := MsgSpec{Prio: 1, Period: 1 * sim.Millisecond, Payload: 8}
	mid := MsgSpec{Prio: 2, Period: 5 * sim.Millisecond, Payload: 4}
	lo := MsgSpec{Prio: 3, Period: 10 * sim.Millisecond, Payload: 8}
	set := []MsgSpec{hi, mid, lo}
	rHi, err := WCRT(set, hi, can.DefaultBitRate)
	if err != nil {
		t.Fatal(err)
	}
	// Highest priority still suffers blocking from a lower frame.
	if rHi <= 160*sim.Microsecond {
		t.Fatalf("high-prio WCRT %v must include blocking", rHi)
	}
	rLo, err := WCRT(set, lo, can.DefaultBitRate)
	if err != nil {
		t.Fatal(err)
	}
	if rLo <= rHi {
		t.Fatalf("low-prio WCRT %v not above high-prio %v", rLo, rHi)
	}
}

func TestWCRTUnschedulable(t *testing.T) {
	// Two streams each demanding ~80% utilization.
	a := MsgSpec{Prio: 1, Period: 200 * sim.Microsecond, Payload: 8}
	b := MsgSpec{Prio: 2, Period: 200 * sim.Microsecond, Payload: 8}
	if _, err := WCRT([]MsgSpec{a, b}, b, can.DefaultBitRate); err != ErrUnschedulable {
		t.Fatalf("err = %v, want unschedulable", err)
	}
}

func TestWCRTBoundsSimulation(t *testing.T) {
	// The analysis must upper-bound simulated worst response times for a
	// fixed-priority set.
	streams := []workload.Stream{
		{Node: 0, Period: 2 * sim.Millisecond, RelDeadline: 2 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 5 * sim.Millisecond, RelDeadline: 5 * sim.Millisecond, Payload: 6},
		{Node: 2, Period: 10 * sim.Millisecond, RelDeadline: 10 * sim.Millisecond, Payload: 8},
	}
	prios, _ := DeadlineMonotonic([]sim.Duration{2 * sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond}, 2, 250)
	set := make([]MsgSpec, len(streams))
	for i, s := range streams {
		set[i] = MsgSpec{Prio: prios[i], Period: s.Period, Payload: s.Payload}
	}
	rng := sim.NewRNG(1)
	jobs := workload.GenJobs(rng, streams, 2*sim.Second)
	out := RunDM(streams, jobs, 2, 250, 1, 3*sim.Second)
	worst := make([]sim.Duration, len(streams))
	for _, jd := range out.Jobs {
		if jd.Completed == 0 {
			t.Fatalf("job dropped in underloaded set: %+v", jd.Job)
		}
		rt := jd.Completed - jd.Job.Release
		if rt > worst[jd.Job.Stream] {
			worst[jd.Job.Stream] = rt
		}
	}
	for i := range streams {
		bound, err := WCRT(set, set[i], can.DefaultBitRate)
		if err != nil {
			t.Fatal(err)
		}
		if worst[i] > bound {
			t.Fatalf("stream %d: simulated worst %v exceeds analysis bound %v", i, worst[i], bound)
		}
	}
}

// lightStreams builds an easy, schedulable stream set.
func lightStreams() []workload.Stream {
	return []workload.Stream{
		{Node: 0, Period: 5 * sim.Millisecond, RelDeadline: 3 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 8 * sim.Millisecond, RelDeadline: 6 * sim.Millisecond, Payload: 8},
		{Node: 2, Period: 12 * sim.Millisecond, RelDeadline: 10 * sim.Millisecond, Payload: 8},
	}
}

func TestRunnersCompleteLightLoad(t *testing.T) {
	streams := lightStreams()
	jobs := workload.GenJobs(sim.NewRNG(2), streams, 1*sim.Second)
	horizon := sim.Time(2 * sim.Second)

	edf := RunEDF(streams, jobs, core.DefaultBands(), 2, horizon)
	dm := RunDM(streams, jobs, 2, 250, 2, horizon)
	oracle := RunOracle(streams, jobs, 2, horizon)
	for name, o := range map[string]Outcome{"edf": edf, "dm": dm, "oracle": oracle} {
		if len(o.Jobs) != len(jobs) {
			t.Fatalf("%s: %d jobs, want %d", name, len(o.Jobs), len(jobs))
		}
		if r := o.MissRatio(); r != 0 {
			t.Fatalf("%s: miss ratio %v under light load", name, r)
		}
	}
}

func TestEDFBeatsDMUnderLoad(t *testing.T) {
	// A load mix chosen so that static deadline-monotonic priorities
	// misschedule: high-rate long-deadline traffic vs low-rate short-
	// deadline traffic.
	streams := []workload.Stream{
		{Node: 0, Period: 400 * sim.Microsecond, RelDeadline: 40 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 400 * sim.Microsecond, RelDeadline: 40 * sim.Millisecond, Payload: 8},
		{Node: 2, Period: 20 * sim.Millisecond, RelDeadline: 1500 * sim.Microsecond, Payload: 8, Sporadic: true},
		{Node: 3, Period: 25 * sim.Millisecond, RelDeadline: 1500 * sim.Microsecond, Payload: 8, Sporadic: true},
	}
	jobs := workload.GenJobs(sim.NewRNG(5), streams, 2*sim.Second)
	horizon := sim.Time(4 * sim.Second)
	edf := RunEDF(streams, jobs, core.DefaultBands(), 5, horizon)
	dm := RunDM(streams, jobs, 2, 250, 5, horizon)
	oracle := RunOracle(streams, jobs, 5, horizon)
	if !(oracle.MissRatio() <= edf.MissRatio()+1e-9) {
		t.Fatalf("oracle %v worse than EDF %v", oracle.MissRatio(), edf.MissRatio())
	}
	if edf.Promotions == 0 {
		t.Fatal("EDF run performed no promotions under load")
	}
	_ = dm
	// DM assigns the short-deadline sporadics top priority — fine for
	// them — but the paper's claim is about *overall* deadline
	// satisfaction under dynamic load; compare total miss ratios.
	if edf.MissRatio() > dm.MissRatio()+1e-9 {
		t.Fatalf("EDF miss ratio %v worse than DM %v on EDF-favourable load",
			edf.MissRatio(), dm.MissRatio())
	}
}

func TestTTCANExclusiveWindows(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	for i := 0; i < 3; i++ {
		bus.Attach(can.TxNode(i))
	}
	var rx []can.Etag
	bus.Controller(2).OnReceive = func(f can.Frame, _ sim.Time) { rx = append(rx, f.ID.Etag()) }
	net := NewTTCAN(k, bus, 2*sim.Millisecond)
	net.AddExclusive(0, 200*sim.Microsecond, 0)
	net.AddExclusive(300*sim.Microsecond, 200*sim.Microsecond, 1)
	net.AddArbitration(600*sim.Microsecond, 1200*sim.Microsecond)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	// Stage exclusive messages for the first cycle only.
	net.SetExclusive(0, can.Frame{ID: can.MakeID(0, 0, 10), Data: []byte{1}})
	net.SetExclusive(1, can.Frame{ID: can.MakeID(0, 1, 11), Data: []byte{2}})
	k.Run(4*sim.Millisecond - 1) // two full cycles, excluding cycle 2's first window
	st := net.Stats()
	if st.ExclUsed != 2 {
		t.Fatalf("ExclUsed = %d, want 2", st.ExclUsed)
	}
	if st.ExclIdle != 2 { // second cycle: both windows idle
		t.Fatalf("ExclIdle = %d, want 2", st.ExclIdle)
	}
	if len(rx) != 2 || rx[0] != 10 || rx[1] != 11 {
		t.Fatalf("rx = %v", rx)
	}
}

func TestTTCANSingleShotLoss(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	bus.Attach(0)
	bus.Attach(1)
	bus.Injector = can.AdversarialK{K: 1, Prio: -1}
	got := 0
	bus.Controller(1).OnReceive = func(can.Frame, sim.Time) { got++ }
	net := NewTTCAN(k, bus, sim.Millisecond)
	net.AddExclusive(0, 300*sim.Microsecond, 0)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	net.SetExclusive(0, can.Frame{ID: can.MakeID(0, 0, 10), Data: []byte{1}})
	k.Run(2 * sim.Millisecond)
	if got != 0 {
		t.Fatal("single-shot TTCAN delivered despite error")
	}
	if net.Stats().ExclMisses != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestTTCANArbitrationRespectsWindowEnd(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	bus.Attach(0)
	bus.Attach(1)
	var rxAt []sim.Time
	bus.Controller(1).OnReceive = func(_ can.Frame, at sim.Time) { rxAt = append(rxAt, at) }
	net := NewTTCAN(k, bus, sim.Millisecond)
	// Arbitration window of 300 µs, then an exclusive window at 500 µs.
	net.AddArbitration(0, 300*sim.Microsecond)
	net.AddExclusive(500*sim.Microsecond, 200*sim.Microsecond, 0)
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	// Queue 5 frames: only ~1 fits per 300 µs window with the worst-case
	// fit rule (160 µs frame, next must fit entirely).
	for i := 0; i < 5; i++ {
		net.SubmitAsync(0, can.Frame{ID: can.MakeID(200, 0, can.Etag(20+i)), Data: make([]byte, 8)}, nil)
	}
	k.Run(10 * sim.Millisecond)
	if len(rxAt) != 5 {
		t.Fatalf("rx = %d frames", len(rxAt))
	}
	// No arbitration frame may complete inside an exclusive window
	// ([500,700]µs of each cycle).
	for _, at := range rxAt {
		off := at % sim.Millisecond
		if off > 500*sim.Microsecond && off < 700*sim.Microsecond {
			t.Fatalf("arbitration frame intruded into exclusive window at %v", at)
		}
	}
}

func TestTTCANScheduleValidation(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	bus.Attach(0)
	net := NewTTCAN(k, bus, sim.Millisecond)
	net.AddExclusive(0, 300*sim.Microsecond, 0)
	net.AddExclusive(200*sim.Microsecond, 300*sim.Microsecond, 0)
	if err := net.Start(); err == nil {
		t.Fatal("overlapping windows accepted")
	}
	net2 := NewTTCAN(k, bus, sim.Millisecond)
	net2.AddExclusive(900*sim.Microsecond, 300*sim.Microsecond, 0)
	if err := net2.Start(); err == nil {
		t.Fatal("window beyond cycle accepted")
	}
}

func TestOutcomeMetrics(t *testing.T) {
	o := Outcome{Jobs: []JobDone{
		{Job: workload.Job{Deadline: 100}, Completed: 90},
		{Job: workload.Job{Deadline: 100}, Completed: 150, Missed: true},
		{Dropped: true},
		{Job: workload.Job{Deadline: 200}, Completed: 260, Missed: true},
	}}
	if r := o.MissRatio(); r != 0.75 {
		t.Fatalf("MissRatio = %v", r)
	}
	if l := o.MeanLateness(); l != 55 {
		t.Fatalf("MeanLateness = %v", l)
	}
	if (Outcome{}).MissRatio() != 0 || (Outcome{}).MeanLateness() != 0 {
		t.Fatal("empty outcome metrics")
	}
}

func TestGenJobsDeterministicAndSorted(t *testing.T) {
	streams := lightStreams()
	a := workload.GenJobs(sim.NewRNG(9), streams, sim.Second)
	b := workload.GenJobs(sim.NewRNG(9), streams, sim.Second)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces differ")
		}
		if i > 0 && a[i].Release < a[i-1].Release {
			t.Fatal("trace not sorted")
		}
	}
}

func TestMixedSetUtilization(t *testing.T) {
	ft := func(p int) sim.Duration { return can.BitTime(can.WorstCaseBits(p), can.DefaultBitRate) }
	rng := sim.NewRNG(4)
	set := workload.MixedSet(8, 0.5, ft, rng)
	u := workload.Utilization(set, ft)
	if u < 0.5 || u > 0.7 {
		t.Fatalf("utilization = %v, want ≈0.5..0.7", u)
	}
	for _, s := range set {
		if s.Node < 0 || s.Node >= 8 {
			t.Fatalf("stream node %d out of range", s.Node)
		}
	}
}
