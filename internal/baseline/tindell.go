// Package baseline implements the comparison systems the paper positions
// itself against (§4): a TTCAN-style time-triggered network (reservations
// enforced purely by time windows, no bandwidth reclamation, single-shot
// transmission), deadline-monotonic fixed-priority scheduling (Tindell &
// Burns [22]), the classical worst-case response-time analysis for CAN,
// and a clairvoyant non-preemptive EDF oracle that upper-bounds what any
// deadline-driven scheme can achieve on the shared bus.
package baseline

import (
	"errors"

	"canec/internal/can"
	"canec/internal/sim"
)

// MsgSpec describes one periodic message stream for response-time
// analysis.
type MsgSpec struct {
	// Prio is the stream's fixed priority (lower = more urgent).
	Prio can.Prio
	// Period is the minimum inter-release time.
	Period sim.Duration
	// Jitter is the release jitter bound.
	Jitter sim.Duration
	// Payload is the frame payload in bytes; worst-case stuffing is
	// assumed for the transmission time.
	Payload int
}

// frameTime returns the worst-case transmission time of the stream's
// frames.
func (m MsgSpec) frameTime(bitRate int) sim.Duration {
	return can.BitTime(can.WorstCaseBits(m.Payload), bitRate)
}

// ErrUnschedulable is returned when the response-time recurrence diverges
// past the analysis horizon (utilization ≥ 1 for the relevant band).
var ErrUnschedulable = errors.New("baseline: response-time recurrence diverged")

// WCRT computes the worst-case response time of stream target within the
// message set (Tindell/Burns analysis for CAN):
//
//	R = J_m + w + C_m
//	w = B_m + Σ_{h ∈ hp(m)} ⌈(w + J_h + τ_bit) / T_h⌉ · C_h
//
// where B_m is the longest lower-or-equal-priority frame that can block a
// release (non-preemptive bus) and τ_bit accounts for the arbitration
// granularity. The recurrence is iterated to a fixed point.
func WCRT(set []MsgSpec, target MsgSpec, bitRate int) (sim.Duration, error) {
	if bitRate <= 0 {
		bitRate = can.DefaultBitRate
	}
	tau := can.BitTime(1, bitRate)
	cm := target.frameTime(bitRate)

	// Precondition of the busy-period argument: the target and its
	// higher-priority interference must not saturate the bus, otherwise
	// the backlog grows without bound across periods even though the
	// first-instance recurrence can still reach a fixed point.
	u := float64(cm) / float64(target.Period)
	for _, h := range set {
		if h.Prio < target.Prio && h.Period > 0 {
			u += float64(h.frameTime(bitRate)) / float64(h.Period)
		}
	}
	if u >= 1 {
		return 0, ErrUnschedulable
	}

	// Blocking: the longest frame of any stream that does not have higher
	// priority than the target (including other instances at equal
	// priority from other nodes).
	var block sim.Duration
	for _, m := range set {
		if m.Prio >= target.Prio && m != target {
			if ft := m.frameTime(bitRate); ft > block {
				block = ft
			}
		}
	}

	// Fixed-point iteration on the queueing delay w.
	horizon := 1000 * target.Period
	if horizon <= 0 {
		horizon = sim.Time(1) << 40
	}
	w := block
	for iter := 0; iter < 1_000_000; iter++ {
		var next sim.Duration = block
		for _, h := range set {
			if h.Prio < target.Prio {
				n := int64((w + h.Jitter + tau + h.Period - 1) / h.Period)
				if n < 1 {
					n = 1
				}
				next += sim.Duration(n) * h.frameTime(bitRate)
			}
		}
		if next == w {
			return target.Jitter + w + cm, nil
		}
		w = next
		if w > horizon {
			return 0, ErrUnschedulable
		}
	}
	return 0, ErrUnschedulable
}

// DeadlineMonotonic assigns fixed priorities within [lo, hi] by relative
// deadline rank: the stream with the shortest deadline gets lo (most
// urgent). Ties keep input order. It returns an error when the band has
// fewer levels than there are streams.
func DeadlineMonotonic(deadlines []sim.Duration, lo, hi can.Prio) ([]can.Prio, error) {
	n := len(deadlines)
	if n > int(hi)-int(lo)+1 {
		return nil, errors.New("baseline: more streams than priority levels")
	}
	// Rank by deadline (stable insertion sort on indices: n is small).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && deadlines[idx[j]] < deadlines[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]can.Prio, n)
	for rank, i := range idx {
		out[i] = lo + can.Prio(rank)
	}
	return out, nil
}
