package baseline

import (
	"fmt"

	"canec/internal/calendar"
	"canec/internal/sim"
	"canec/internal/workload"
)

// Feasibility is the off-line schedulability verdict for a mixed system:
// the hard real-time calendar claims its reserved share, and the soft
// real-time stream set must fit into what remains. The paper assumes this
// kind of check happens "before any new reservation is confirmed" (§3.1);
// for the SRT band the classical non-preemptive EDF utilization condition
// applies against the *residual* bandwidth.
type Feasibility struct {
	// HRTShare is the long-run bus fraction reserved by the calendar.
	HRTShare float64
	// SRTDemand is the stream set's long-run utilization (worst-case
	// frame times).
	SRTDemand float64
	// Blocking is the largest non-preemptable lower-priority frame time
	// that can delay an urgent message (one worst-case frame).
	Blocking sim.Duration
	// MinDeadline is the tightest relative deadline in the set.
	MinDeadline sim.Duration
	// Feasible reports the overall verdict.
	Feasible bool
	// Reason explains a negative verdict.
	Reason string
}

// CheckMixed evaluates whether the SRT stream set fits alongside the HRT
// calendar. The test is the standard sufficient condition for
// non-preemptive EDF with blocking, applied to the residual bandwidth:
//
//	U_SRT / (1 − U_HRT) + B / D_min ≤ 1
//
// It is conservative (sufficient, not necessary): passing sets are
// schedulable in the long run; failing sets may still mostly work but
// carry no guarantee.
func CheckMixed(cal *calendar.Calendar, streams []workload.Stream,
	frameTime func(int) sim.Duration) Feasibility {

	f := Feasibility{}
	if cal != nil {
		f.HRTShare = cal.Utilization()
	}
	f.SRTDemand = workload.Utilization(streams, frameTime)
	f.Blocking = frameTime(8)
	for i, s := range streams {
		if s.RelDeadline <= 0 {
			f.Reason = fmt.Sprintf("stream %d: non-positive deadline", i)
			return f
		}
		if f.MinDeadline == 0 || s.RelDeadline < f.MinDeadline {
			f.MinDeadline = s.RelDeadline
		}
	}
	residual := 1 - f.HRTShare
	if residual <= 0 {
		f.Reason = "calendar reserves the whole bus"
		return f
	}
	lhs := f.SRTDemand / residual
	if f.MinDeadline > 0 {
		lhs += float64(f.Blocking) / float64(f.MinDeadline)
	}
	if lhs > 1 {
		f.Reason = fmt.Sprintf("demand %.2f of residual bandwidth exceeds 1", lhs)
		return f
	}
	f.Feasible = true
	return f
}
