package baseline

import (
	"encoding/binary"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/workload"
)

// JobDone records the fate of one job under some scheduler.
type JobDone struct {
	Job       workload.Job
	Completed sim.Time // 0 if never transmitted
	Missed    bool     // transmitted after its deadline
	Dropped   bool     // expired / never transmitted inside the horizon
}

// Outcome aggregates a scheduler run.
type Outcome struct {
	Jobs       []JobDone
	Promotions uint64 // identifier rewrites performed (EDF only)
}

// MissRatio returns the fraction of jobs that missed their deadline or
// were dropped.
func (o Outcome) MissRatio() float64 {
	if len(o.Jobs) == 0 {
		return 0
	}
	bad := 0
	for _, j := range o.Jobs {
		if j.Missed || j.Dropped {
			bad++
		}
	}
	return float64(bad) / float64(len(o.Jobs))
}

// MeanLateness returns the average (completion − deadline) over jobs that
// completed late, in nanoseconds.
func (o Outcome) MeanLateness() float64 {
	var sum float64
	n := 0
	for _, j := range o.Jobs {
		if j.Missed && j.Completed > 0 {
			sum += float64(j.Completed - j.Job.Deadline)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// jobTag encodes (stream, seq) into a frame payload prefix so receivers
// can attribute completions. 2 bytes stream + 4 bytes seq.
const jobTagLen = 6

func putJobTag(dst []byte, j workload.Job) {
	binary.LittleEndian.PutUint16(dst, uint16(j.Stream))
	binary.LittleEndian.PutUint32(dst[2:], uint32(j.Seq))
}

func getJobTag(src []byte) (stream, seq int) {
	return int(binary.LittleEndian.Uint16(src)), int(binary.LittleEndian.Uint32(src[2:]))
}

// payloadFor pads the tagged payload to the stream's nominal size so all
// schedulers pay identical wire costs (minimum jobTagLen).
func payloadFor(j workload.Job, s workload.Stream) []byte {
	n := s.Payload
	if n < jobTagLen {
		n = jobTagLen
	}
	p := make([]byte, n)
	putJobTag(p, j)
	return p
}

// EDFOptions tune the paper's SRT machinery for ablation runs.
type EDFOptions struct {
	Bands core.Bands
	// DisablePromotion freezes priorities at enqueue time (§3.4 ablation).
	DisablePromotion bool
}

// RunEDF executes the job trace through the paper's soft real-time event
// channels (laxity→priority mapping with promotion) and reports per-job
// outcomes. Node count is max stream node + 2: the last node is a pure
// subscriber that timestamps completions.
func RunEDF(streams []workload.Stream, jobs []workload.Job, band core.Bands, seed uint64, until sim.Time) Outcome {
	return RunEDFOpts(streams, jobs, EDFOptions{Bands: band}, seed, until)
}

// RunEDFOpts is RunEDF with ablation switches.
func RunEDFOpts(streams []workload.Stream, jobs []workload.Job, opts EDFOptions, seed uint64, until sim.Time) Outcome {
	band := opts.Bands
	nodes := 0
	for _, s := range streams {
		if s.Node > nodes {
			nodes = s.Node
		}
	}
	nodes += 2
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: nodes, Seed: seed, Bands: band,
	})
	if err != nil {
		panic(err)
	}
	if opts.DisablePromotion {
		for _, n := range sys.Nodes {
			n.MW.DisablePromotion = true
		}
	}
	out := Outcome{Jobs: make([]JobDone, len(jobs))}
	done := make(map[[2]int]*JobDone, len(jobs))
	for i := range jobs {
		out.Jobs[i] = JobDone{Job: jobs[i]}
		done[[2]int{jobs[i].Stream, jobs[i].Seq}] = &out.Jobs[i]
	}

	chans := make([]*core.SRTEC, len(streams))
	for si, s := range streams {
		subject := binding.Subject(0x5000 + si)
		ch, err := sys.Node(s.Node).MW.SRTEC(subject)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{}, nil); err != nil {
			panic(err)
		}
		chans[si] = ch
		sub, err := sys.Node(nodes - 1).MW.SRTEC(subject)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				stream, seq := getJobTag(ev.Payload)
				if jd := done[[2]int{stream, seq}]; jd != nil {
					jd.Completed = di.ArrivedAt
					jd.Missed = di.ArrivedAt > jd.Job.Deadline
				}
			}, nil)
	}
	for i := range jobs {
		j := jobs[i]
		s := streams[j.Stream]
		sys.K.At(j.Release, func() {
			_ = chans[j.Stream].Publish(core.Event{
				Subject: binding.Subject(0x5000 + j.Stream),
				Payload: payloadFor(j, s),
				Attrs: core.EventAttrs{
					Deadline:   j.Deadline,
					Expiration: j.Expiration,
				},
			})
		})
	}
	sys.Run(until)
	for i := range out.Jobs {
		if out.Jobs[i].Completed == 0 {
			out.Jobs[i].Dropped = true
		}
	}
	out.Promotions = sys.Bus.Stats().IDRewrites
	return out
}

// RunDM executes the same trace under deadline-monotonic fixed priorities
// (Tindell/Burns-style, the discipline of CANopen/DeviceNet-era systems):
// each stream has one static priority for its whole lifetime, assigned by
// relative-deadline rank inside the same priority band the EDF scheme
// uses.
func RunDM(streams []workload.Stream, jobs []workload.Job, lo, hi can.Prio, seed uint64, until sim.Time) Outcome {
	deadlines := make([]sim.Duration, len(streams))
	for i, s := range streams {
		deadlines[i] = s.RelDeadline
	}
	prios, err := DeadlineMonotonic(deadlines, lo, hi)
	if err != nil {
		panic(err)
	}
	nodes := 0
	for _, s := range streams {
		if s.Node > nodes {
			nodes = s.Node
		}
	}
	nodes += 1
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	for i := 0; i < nodes; i++ {
		bus.Attach(can.TxNode(i))
	}
	out := Outcome{Jobs: make([]JobDone, len(jobs))}
	for i := range jobs {
		i := i
		j := jobs[i]
		s := streams[j.Stream]
		out.Jobs[i] = JobDone{Job: j}
		k.At(j.Release, func() {
			f := can.Frame{
				// Etag keyed by stream keeps identifiers unique across
				// streams sharing a node and priority.
				ID:   can.MakeID(prios[j.Stream], can.TxNode(s.Node), can.Etag(j.Stream+1)),
				Data: payloadFor(j, s),
			}
			h := bus.Controller(s.Node).Submit(f, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
				if !ok {
					return
				}
				out.Jobs[i].Completed = at
				out.Jobs[i].Missed = at > j.Deadline
			}})
			if j.Expiration > 0 {
				k.At(j.Expiration, func() {
					bus.Controller(s.Node).Abort(h)
				})
			}
		})
	}
	k.Run(until)
	for i := range out.Jobs {
		if out.Jobs[i].Completed == 0 {
			out.Jobs[i].Dropped = true
		}
	}
	return out
}

// RunOracle executes the trace under a clairvoyant, centralized,
// non-preemptive EDF scheduler: at every bus-idle instant it transmits
// the globally earliest-deadline released job. No real distributed
// scheme on CAN can beat it; it bounds the gap left by the priority-slot
// quantization and the per-node queueing of the real protocols.
func RunOracle(streams []workload.Stream, jobs []workload.Job, seed uint64, until sim.Time) Outcome {
	nodes := 0
	for _, s := range streams {
		if s.Node > nodes {
			nodes = s.Node
		}
	}
	nodes += 1
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	for i := 0; i < nodes; i++ {
		bus.Attach(can.TxNode(i))
	}
	out := Outcome{Jobs: make([]JobDone, len(jobs))}

	type pending struct {
		idx int
	}
	var ready []pending
	busyWith := -1

	var dispatch func()
	dispatch = func() {
		if busyWith >= 0 || len(ready) == 0 {
			return
		}
		// Drop expired jobs, then pick the earliest deadline.
		now := k.Now()
		kept := ready[:0]
		for _, p := range ready {
			j := out.Jobs[p.idx].Job
			if j.Expiration > 0 && now >= j.Expiration {
				continue
			}
			kept = append(kept, p)
		}
		ready = kept
		if len(ready) == 0 {
			return
		}
		best := 0
		for i, p := range ready {
			if out.Jobs[p.idx].Job.Deadline < out.Jobs[ready[best].idx].Job.Deadline {
				best = i
			}
		}
		p := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		j := out.Jobs[p.idx].Job
		s := streams[j.Stream]
		busyWith = p.idx
		bus.Controller(s.Node).Submit(can.Frame{
			ID:   can.MakeID(10, can.TxNode(s.Node), can.Etag(j.Stream+1)),
			Data: payloadFor(j, s),
		}, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
			if ok {
				out.Jobs[p.idx].Completed = at
				out.Jobs[p.idx].Missed = at > j.Deadline
			}
			busyWith = -1
			dispatch()
		}})
	}

	for i := range jobs {
		i := i
		out.Jobs[i] = JobDone{Job: jobs[i]}
		k.At(jobs[i].Release, func() {
			ready = append(ready, pending{idx: i})
			dispatch()
		})
	}
	k.Run(until)
	for i := range out.Jobs {
		if out.Jobs[i].Completed == 0 {
			out.Jobs[i].Dropped = true
		}
	}
	return out
}
