package baseline

import (
	"errors"
	"fmt"

	"canec/internal/can"
	"canec/internal/sim"
)

// TTCAN models the time-triggered CAN profile the paper compares against
// (§3.2, §4): the basic cycle is divided into exclusive windows — each
// owned by one message of one node, transmitted single-shot exactly at
// the window start — and arbitration windows where event-driven traffic
// contends normally. The two properties the paper criticises are modelled
// faithfully:
//
//  1. no reclamation: an unused or partially used exclusive window stays
//     idle — no other node may start a transmission inside it;
//  2. single-shot: a corrupted transmission in an exclusive window is NOT
//     retransmitted (retransmission would slide into the next window), so
//     omissions must be tolerated by statically reserving extra windows.
type TTCAN struct {
	K   *sim.Kernel
	Bus *can.Bus
	// Cycle is the basic cycle length.
	Cycle sim.Duration
	// Windows, in start order, validated by Start.
	Windows []TTWindow

	arbQueue  []ttArb
	sending   bool
	misses    uint64
	exclUsed  uint64
	exclIdle  uint64
	arbFrames uint64

	// pending exclusive messages: one slot per window index.
	pending map[int]*can.Frame
}

// TTWindow is one window of the basic cycle.
type TTWindow struct {
	// Start offset within the cycle; Len is the window length.
	Start, Len sim.Duration
	// Exclusive windows carry exactly one pre-planned frame of one owner.
	Exclusive bool
	// Owner is the controller index allowed to transmit (exclusive only).
	Owner int
}

type ttArb struct {
	sender int
	frame  can.Frame
	done   func(ok bool, at sim.Time)
}

// TTStats reports cycle bookkeeping.
type TTStats struct {
	ExclUsed, ExclIdle, ArbFrames, ExclMisses uint64
}

// Stats returns the accumulated counters.
func (n *TTCAN) Stats() TTStats {
	return TTStats{ExclUsed: n.exclUsed, ExclIdle: n.exclIdle, ArbFrames: n.arbFrames, ExclMisses: n.misses}
}

// NewTTCAN builds the network on an existing kernel/bus.
func NewTTCAN(k *sim.Kernel, bus *can.Bus, cycle sim.Duration) *TTCAN {
	return &TTCAN{K: k, Bus: bus, Cycle: cycle, pending: make(map[int]*can.Frame)}
}

// AddExclusive appends an exclusive window for owner.
func (n *TTCAN) AddExclusive(start, length sim.Duration, owner int) {
	n.Windows = append(n.Windows, TTWindow{Start: start, Len: length, Exclusive: true, Owner: owner})
}

// AddArbitration appends an arbitration window.
func (n *TTCAN) AddArbitration(start, length sim.Duration) {
	n.Windows = append(n.Windows, TTWindow{Start: start, Len: length})
}

// SetExclusive stages the frame for the window with the given index; it
// is transmitted at the window's next occurrence. Staging again before
// that overwrites (freshest value semantics).
func (n *TTCAN) SetExclusive(window int, f can.Frame) {
	fc := f.Clone()
	n.pending[window] = &fc
}

// SubmitAsync queues a frame for the arbitration windows.
func (n *TTCAN) SubmitAsync(sender int, f can.Frame, done func(ok bool, at sim.Time)) {
	n.arbQueue = append(n.arbQueue, ttArb{sender: sender, frame: f.Clone(), done: done})
}

// Start validates the schedule and begins cycling.
func (n *TTCAN) Start() error {
	for i := 1; i < len(n.Windows); i++ {
		if n.Windows[i].Start < n.Windows[i-1].Start+n.Windows[i-1].Len {
			return fmt.Errorf("baseline: TTCAN windows %d and %d overlap", i-1, i)
		}
	}
	if len(n.Windows) > 0 {
		last := n.Windows[len(n.Windows)-1]
		if last.Start+last.Len > n.Cycle {
			return errors.New("baseline: TTCAN window beyond basic cycle")
		}
	}
	for wi := range n.Windows {
		n.runWindow(wi, 0)
	}
	return nil
}

// runWindow fires window wi in every cycle.
func (n *TTCAN) runWindow(wi int, cycle int64) {
	w := n.Windows[wi]
	at := sim.Time(cycle)*n.Cycle + w.Start
	n.K.At(at, func() {
		if w.Exclusive {
			n.fireExclusive(wi)
		} else {
			n.fireArbitration(w)
		}
		n.runWindow(wi, cycle+1)
	})
}

// fireExclusive transmits the staged frame, single-shot.
func (n *TTCAN) fireExclusive(wi int) {
	f := n.pending[wi]
	if f == nil {
		n.exclIdle++
		return
	}
	delete(n.pending, wi)
	n.exclUsed++
	n.Bus.Controller(n.Windows[wi].Owner).Submit(*f, can.SubmitOpts{
		SingleShot: true,
		Done: func(ok bool, _ sim.Time) {
			if !ok {
				n.misses++
			}
		},
	})
}

// fireArbitration releases queued event-driven frames into the window,
// one at a time, as long as a worst-case frame still fits before the
// window closes — TTCAN's rule for keeping arbitration traffic out of the
// following exclusive window.
func (n *TTCAN) fireArbitration(w TTWindow) {
	endAt := n.K.Now() + w.Len
	worst := n.Bus.BitDuration(can.WorstCaseBits(can.MaxPayload))
	var sendNext func()
	sendNext = func() {
		if n.sending || len(n.arbQueue) == 0 {
			return
		}
		if n.K.Now()+worst > endAt {
			return // would bleed into the next exclusive window
		}
		job := n.arbQueue[0]
		n.arbQueue = n.arbQueue[1:]
		n.sending = true
		n.Bus.Controller(job.sender).Submit(job.frame, can.SubmitOpts{Done: func(ok bool, at sim.Time) {
			n.sending = false
			n.arbFrames++
			if job.done != nil {
				job.done(ok, at)
			}
			sendNext()
		}})
	}
	sendNext()
}
