#!/usr/bin/env bash
# bench_smoke: the performance-trajectory gate. Checks the whole
# record→compare loop without paying for a full calibrated run:
#
#  1. the committed BENCH_seed.json self-compares clean (exit 0),
#  2. an injected ns/op regression in a doctored copy trips the gate
#     (exit non-zero),
#  3. a short fixed-iteration recording of the fast cases round-trips
#     through the JSON schema and self-compares clean,
#  4. the kernel profiler runs the mixed workload and reports every
#     pipeline stage.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

GO="${GO:-go}"
"$GO" build -o "$workdir/canecbench" ./cmd/canecbench

seed=BENCH_seed.json
[ -f "$seed" ] || { echo "bench-smoke: $seed not committed" >&2; exit 1; }

# 1. Committed baseline must self-compare clean.
"$workdir/canecbench" -compare "$seed" "$seed" > "$workdir/self.txt" || {
    echo "bench-smoke: committed $seed fails self-compare" >&2
    cat "$workdir/self.txt" >&2
    exit 1
}

# 2. A 10x ns/op regression on one benchmark must trip the gate.
python3 - "$seed" "$workdir/BENCH_doctored.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
doc["results"][0]["ns_per_op"] *= 10
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
EOF
if "$workdir/canecbench" -compare "$seed" "$workdir/BENCH_doctored.json" \
    > "$workdir/doctored.txt" 2>&1; then
    echo "bench-smoke: injected regression NOT caught" >&2
    cat "$workdir/doctored.txt" >&2
    exit 1
fi
grep -q REGRESSION "$workdir/doctored.txt" || {
    echo "bench-smoke: gate failed without naming the regression" >&2
    cat "$workdir/doctored.txt" >&2
    exit 1
}

# 3. Short live recording of the fast cases, then self-compare.
"$workdir/canecbench" -json smoke -bench-dir "$workdir" -bench-iters 300 \
    -bench SimKernel,FrameWireBits,BusSaturated,EndToEndHRT,EndToEndSRT,RelayThroughput \
    > /dev/null
"$workdir/canecbench" -compare "$workdir/BENCH_smoke.json" "$workdir/BENCH_smoke.json" \
    > /dev/null

# 4. Profiler stage breakdown over the mixed workload.
"$workdir/canecbench" -profile 500 > "$workdir/profile.txt"
for stage in enqueue heap arbitration codec dispatch delivery; do
    grep -q "^$stage" "$workdir/profile.txt" || {
        echo "bench-smoke: stage $stage missing from profile" >&2
        cat "$workdir/profile.txt" >&2
        exit 1
    }
done

echo "bench-smoke: OK (baseline clean, injected regression caught, live record + profile working)"
