#!/usr/bin/env bash
# relay_smoke: the multi-process federation gate. Spawns two canecd
# daemons on localhost, publishes three SRT events on segment a, and
# requires segment b to deliver all three with the origin trace intact
# (continuous trace ID from a's base, relay_rx recorded on b).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'kill "$bpid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
bpid=""

GO="${GO:-go}"
"$GO" build -o "$workdir/canecd" ./cmd/canecd

"$workdir/canecd" -segment b -trace-base 2 -listen 127.0.0.1:0 \
    -sub 0x42 -announce srt:0x42 -expect 0x42:3 -expect-origin 1 \
    -dur 30s -hb 100ms > "$workdir/b.log" 2>&1 &
bpid=$!

# The listener picks an ephemeral port and prints it; wait for the line.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on //p' "$workdir/b.log" | head -n1)"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "relay-smoke: listener never came up" >&2
    cat "$workdir/b.log" >&2
    exit 1
fi

"$workdir/canecd" -segment a -trace-base 1 -uplink "$addr" \
    -forward srt:0x42 -publish srt:0x42:3:20ms -dur 30s -hb 100ms \
    > "$workdir/a.log" 2>&1

if ! wait "$bpid"; then
    echo "relay-smoke: segment b failed" >&2
    cat "$workdir/a.log" "$workdir/b.log" >&2
    exit 1
fi
grep -q "expect met" "$workdir/b.log" || {
    echo "relay-smoke: no expectation report in b's log" >&2
    cat "$workdir/b.log" >&2
    exit 1
}
echo "relay-smoke: OK ($(sed -n 's/.*expect met: //p' "$workdir/b.log" | head -n1))"
