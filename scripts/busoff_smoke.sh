#!/usr/bin/env bash
# busoff_smoke: the bus-off adversary gate. Replays the scripted
# error-confinement attack campaign (testdata/chaos-busoff-attack.json
# over testdata/scenario-busoff.json): a rate-1.0 slot-timed corruption
# attack on station 1 with the guardian's slot-targeted escalation armed
# and the lifecycle supervisor owning bus-off recovery. The run must
# show the weapon working (a bus-off entry), the defense working (a
# supervised recovery and the attacker isolated), and every chaos trace
# invariant holding — twice, bit-identically, for determinism.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

GO="${GO:-go}"
"$GO" build -o "$workdir/canecsim" ./cmd/canecsim

run() {
    "$workdir/canecsim" -config testdata/scenario-busoff.json \
        -chaos testdata/chaos-busoff-attack.json
}

run > "$workdir/run1.out" || {
    echo "busoff-smoke: campaign failed" >&2; cat "$workdir/run1.out" >&2; exit 1; }

grep -q 'chaos: bus-off: [1-9][0-9]* event(s), [1-9][0-9]* supervised recovery(ies)' "$workdir/run1.out" || {
    echo "busoff-smoke: victim never went bus-off or never recovered" >&2
    cat "$workdir/run1.out" >&2; exit 1; }
grep -q 'isolated 1 nodes' "$workdir/run1.out" || {
    echo "busoff-smoke: guardian never isolated the attacker" >&2
    cat "$workdir/run1.out" >&2; exit 1; }
grep -q 'attacker sent 0' "$workdir/run1.out" || {
    echo "busoff-smoke: attacker pulses reached the wire despite the guardian" >&2
    cat "$workdir/run1.out" >&2; exit 1; }
grep -q 'chaos: all trace invariants hold' "$workdir/run1.out" || {
    echo "busoff-smoke: invariant violations" >&2
    cat "$workdir/run1.out" >&2; exit 1; }

# Same seed, same script: the second run must be bit-identical.
run > "$workdir/run2.out" || {
    echo "busoff-smoke: second campaign failed" >&2; cat "$workdir/run2.out" >&2; exit 1; }
diff "$workdir/run1.out" "$workdir/run2.out" > /dev/null || {
    echo "busoff-smoke: campaign is not deterministic" >&2
    diff "$workdir/run1.out" "$workdir/run2.out" >&2 || true
    exit 1; }

echo "busoff-smoke: OK"
cat "$workdir/run1.out"
