#!/usr/bin/env bash
# admission_smoke: the probabilistic-admission gate. Runs the
# over-admission scenario (testdata/scenario-admission.json) twice:
#
#  - clean: the overcommitted channel must be rejected at announce with
#    the typed miss-probability reason while the schedulable channels
#    are admitted and nothing is shed;
#  - under the bit-error ramp (testdata/chaos-admission-ramp.json): the
#    error-passive transition must raise the measured error rate, the
#    marginal channel must be shed, the surviving admitted SRT channels
#    must keep the target miss probability, HRT must stay unaffected,
#    and every chaos trace invariant must hold — deterministically.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

GO="${GO:-go}"
"$GO" build -o "$workdir/canecsim" ./cmd/canecsim

"$workdir/canecsim" -config testdata/scenario-admission.json > "$workdir/clean.out" || {
    echo "admission-smoke: clean run failed" >&2; cat "$workdir/clean.out" >&2; exit 1; }

grep -q 'admission: 3 admitted, 1 rejected, 0 shed' "$workdir/clean.out" || {
    echo "admission-smoke: clean run admitted/rejected mix wrong" >&2
    cat "$workdir/clean.out" >&2; exit 1; }
grep -q 'admission: rejected srt 0x382: miss-probability' "$workdir/clean.out" || {
    echo "admission-smoke: overcommitted channel not rejected with typed reason" >&2
    cat "$workdir/clean.out" >&2; exit 1; }
grep -q 'SRT: .* deadlineMissed 0,' "$workdir/clean.out" || {
    echo "admission-smoke: admitted channels missed deadlines on a clean bus" >&2
    cat "$workdir/clean.out" >&2; exit 1; }

run_chaos() {
    "$workdir/canecsim" -config testdata/scenario-admission.json \
        -chaos testdata/chaos-admission-ramp.json
}

run_chaos > "$workdir/chaos1.out" || {
    echo "admission-smoke: chaos run failed" >&2; cat "$workdir/chaos1.out" >&2; exit 1; }

grep -q 'admission: 3 admitted, 1 rejected, 1 shed' "$workdir/chaos1.out" || {
    echo "admission-smoke: marginal channel not shed under the error ramp" >&2
    cat "$workdir/chaos1.out" >&2; exit 1; }
grep -q 'admission: rejections by reason: miss-probability' "$workdir/chaos1.out" || {
    echo "admission-smoke: typed rejection reason missing" >&2
    cat "$workdir/chaos1.out" >&2; exit 1; }
grep -q 'chaos: all trace invariants hold' "$workdir/chaos1.out" || {
    echo "admission-smoke: invariant violations" >&2
    cat "$workdir/chaos1.out" >&2; exit 1; }
grep -q 'HRT: .* late 0,' "$workdir/chaos1.out" || {
    echo "admission-smoke: HRT deliveries went late under the SRT error ramp" >&2
    cat "$workdir/chaos1.out" >&2; exit 1; }

# The surviving admitted channels must keep the 0.02 miss target even
# under the ramp: measured misses / deliveries <= target.
awk '/^SRT: / {
    delivered = $2 + 0
    for (i = 1; i <= NF; i++) if ($i == "deadlineMissed") missed = $(i+1) + 0
    if (delivered == 0 || missed / delivered > 0.02) exit 1
}' "$workdir/chaos1.out" || {
    echo "admission-smoke: admitted SRT channels broke the miss target" >&2
    cat "$workdir/chaos1.out" >&2; exit 1; }

# Same seed, same script: the second run must be bit-identical.
run_chaos > "$workdir/chaos2.out" || {
    echo "admission-smoke: second chaos run failed" >&2; cat "$workdir/chaos2.out" >&2; exit 1; }
diff "$workdir/chaos1.out" "$workdir/chaos2.out" > /dev/null || {
    echo "admission-smoke: campaign is not deterministic" >&2
    diff "$workdir/chaos1.out" "$workdir/chaos2.out" >&2 || true
    exit 1; }

echo "admission-smoke: OK"
cat "$workdir/chaos1.out"
