#!/usr/bin/env bash
# control_smoke: the closed-loop control gate. Runs the demo control
# scenario (testdata/scenario-control.json: a PID cart loop whose
# controller is station 2 and a bystander thermal loop on stations 4/5)
# clean, then replays it under the scripted bus-off attack on the cart's
# controller (testdata/chaos-control-attack.json). The clean run must
# settle both loops with zero stale ticks; the attacked run must show
# the outage in the quality-of-control measure (strictly higher cart
# cost, stale ticks while the controller is bus-off) yet still recover
# and settle before the horizon, leave the bystander loop untouched and
# hold every chaos trace invariant — twice, bit-identically.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

GO="${GO:-go}"
"$GO" build -o "$workdir/canecsim" ./cmd/canecsim

"$workdir/canecsim" -config testdata/scenario-control.json > "$workdir/clean.out" || {
    echo "control-smoke: clean run failed" >&2; cat "$workdir/clean.out" >&2; exit 1; }

for loop in cart heat; do
    grep -q "control $loop\[SRT\]: .* settled at .* stale 0," "$workdir/clean.out" || {
        echo "control-smoke: $loop loop did not settle cleanly on an idle bus" >&2
        cat "$workdir/clean.out" >&2; exit 1; }
done

attack() {
    "$workdir/canecsim" -config testdata/scenario-control.json \
        -chaos testdata/chaos-control-attack.json
}

attack > "$workdir/attack.out" || {
    echo "control-smoke: attacked run failed" >&2; cat "$workdir/attack.out" >&2; exit 1; }

grep -q 'chaos: bus-off: [1-9][0-9]* event(s), [1-9][0-9]* supervised recovery(ies)' "$workdir/attack.out" || {
    echo "control-smoke: controller never went bus-off or never recovered" >&2
    cat "$workdir/attack.out" >&2; exit 1; }
grep -q 'chaos: all trace invariants hold' "$workdir/attack.out" || {
    echo "control-smoke: invariant violations" >&2
    cat "$workdir/attack.out" >&2; exit 1; }

# The attack must be visible in the loop through the victim: strictly
# higher quadratic cost, stale ticks during the outage, and — because
# the supervisor recovers the station — the loop must still settle.
cart_cost() { awk '/^control cart/ { sub(/.*cost /, ""); print $1 }' "$1"; }
clean_cost="$(cart_cost "$workdir/clean.out")"
attack_cost="$(cart_cost "$workdir/attack.out")"
awk -v a="$attack_cost" -v c="$clean_cost" 'BEGIN { exit !(a > c) }' || {
    echo "control-smoke: attack did not raise cart cost ($attack_cost vs $clean_cost)" >&2
    cat "$workdir/attack.out" >&2; exit 1; }
grep -q 'control cart\[SRT\]: .* stale [1-9][0-9]*,' "$workdir/attack.out" || {
    echo "control-smoke: no stale ticks during the controller outage" >&2
    cat "$workdir/attack.out" >&2; exit 1; }
grep -q 'control cart\[SRT\]: .* settled at ' "$workdir/attack.out" || {
    echo "control-smoke: cart loop never re-settled after the attack" >&2
    cat "$workdir/attack.out" >&2; exit 1; }

# The bystander loop on stations 4/5 must ride out the attack untouched.
grep -q 'control heat\[SRT\]: .* settled at .* stale 0,' "$workdir/attack.out" || {
    echo "control-smoke: bystander loop was disturbed by the attack" >&2
    cat "$workdir/attack.out" >&2; exit 1; }

# Same seed, same script: the second attacked run must be bit-identical.
attack > "$workdir/attack2.out" || {
    echo "control-smoke: second attacked run failed" >&2; cat "$workdir/attack2.out" >&2; exit 1; }
diff "$workdir/attack.out" "$workdir/attack2.out" > /dev/null || {
    echo "control-smoke: campaign is not deterministic" >&2
    diff "$workdir/attack.out" "$workdir/attack2.out" >&2 || true
    exit 1; }

echo "control-smoke: OK"
cat "$workdir/attack.out"
