#!/usr/bin/env bash
# why_smoke: the root-cause attribution gate. First the E19 campaigns run
# under the race detector — injected faults must be attributed to their
# cause families with zero misattribution of the control group and the
# residual-zero invariant (segment debits tile publish→deliver exactly)
# holding for every chain. Then the full pipeline goes end to end: a
# scripted bit-error campaign drives an SRT deadline-miss SLO breach, the
# breach post-mortem must carry the correct top cause on its slo_breach
# record, and canecwhy over the dump must rank the same cause first —
# twice, bit-identically, for determinism.
set -euo pipefail

cd "$(dirname "$0")/.."
repo="$(pwd)"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

GO="${GO:-go}"

"$GO" test -race -run 'TestE19Attribution' ./internal/experiments/ > "$workdir/e19.out" 2>&1 || {
    echo "why-smoke: E19 attribution failed under -race" >&2
    cat "$workdir/e19.out" >&2; exit 1; }

"$GO" build -o "$workdir/canecsim" ./cmd/canecsim
"$GO" build -o "$workdir/canecwhy" ./cmd/canecwhy

run() { # $1 = run directory
    mkdir -p "$1"
    (cd "$1" && "$workdir/canecsim" \
        -config "$repo/testdata/scenario-why.json" \
        -chaos "$repo/testdata/chaos-why.json") > "$1/report.out"
}

run "$workdir/run1" || {
    echo "why-smoke: campaign failed" >&2; cat "$workdir/run1/report.out" >&2; exit 1; }

grep -q 'slo: srt-miss-rate breached' "$workdir/run1/report.out" || {
    echo "why-smoke: the campaign never breached the SRT miss SLO" >&2
    cat "$workdir/run1/report.out" >&2; exit 1; }
grep -q 'why: SRT: [1-9][0-9]* late, .* top cause error_retransmit' "$workdir/run1/report.out" || {
    echo "why-smoke: report did not attribute the injected bit errors" >&2
    cat "$workdir/run1/report.out" >&2; exit 1; }

pm="$(ls "$workdir"/run1/postmortem-*-slo-srt-miss-rate.jsonl 2>/dev/null | head -1)"
[ -n "$pm" ] || {
    echo "why-smoke: SLO breach produced no post-mortem dump" >&2
    ls "$workdir/run1" >&2; exit 1; }
grep -q 'why: top causes: error_retransmit' "$pm" || {
    echo "why-smoke: breach record missing the attributed top cause" >&2
    grep -o '"stage":"slo_breach".*' "$pm" >&2 || true; exit 1; }

"$workdir/canecwhy" -late-over srt=700us "$pm" > "$workdir/run1/why.out" || {
    echo "why-smoke: canecwhy failed on the post-mortem" >&2; exit 1; }
grep -q 'top causes: error_retransmit' "$workdir/run1/why.out" || {
    echo "why-smoke: canecwhy ranked the wrong root cause" >&2
    cat "$workdir/run1/why.out" >&2; exit 1; }

# Same seed, same script: report, post-mortem and canecwhy verdict must
# all be bit-identical on a second run.
run "$workdir/run2" || {
    echo "why-smoke: second campaign failed" >&2; cat "$workdir/run2/report.out" >&2; exit 1; }
pm2="$(ls "$workdir"/run2/postmortem-*-slo-srt-miss-rate.jsonl | head -1)"
"$workdir/canecwhy" -late-over srt=700us "$pm2" | \
    sed "s|$workdir/run2|$workdir/run1|" > "$workdir/run2/why.out"
for pair in "report.out report.out" "why.out why.out"; do
    set -- $pair
    diff "$workdir/run1/$1" "$workdir/run2/$2" > /dev/null || {
        echo "why-smoke: $1 is not deterministic" >&2
        diff "$workdir/run1/$1" "$workdir/run2/$2" >&2 || true; exit 1; }
done
diff "$pm" "$pm2" > /dev/null || {
    echo "why-smoke: post-mortem dumps differ between runs" >&2; exit 1; }

echo "why-smoke: OK"
cat "$workdir/run1/report.out"
