#!/usr/bin/env bash
# obs_smoke: the live-introspection gate. Spawns the relay-smoke
# two-daemon federation with the admin plane enabled on both daemons,
# then drives canecstat against the fleet: /healthz and /slo must
# answer on both segments, and every /metrics exposition must pass the
# strict Prometheus text-format validator.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'kill "$bpid" "$apid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
bpid=""
apid=""

GO="${GO:-go}"
"$GO" build -o "$workdir/canecd" ./cmd/canecd
"$GO" build -o "$workdir/canecstat" ./cmd/canecstat

"$workdir/canecd" -segment b -trace-base 2 -listen 127.0.0.1:0 \
    -admin 127.0.0.1:0 -flight-dir "$workdir" \
    -sub 0x42 -announce srt:0x42 -expect 0x42:5 -expect-origin 1 \
    -dur 60s -hb 100ms > "$workdir/b.log" 2>&1 &
bpid=$!

wait_line() { # file sed-pattern
    local out=""
    for _ in $(seq 1 100); do
        out="$(sed -n "s/.*$2 //p" "$1" | head -n1)"
        [ -n "$out" ] && { echo "$out"; return 0; }
        sleep 0.1
    done
    return 1
}

addr="$(wait_line "$workdir/b.log" 'listening on')" || {
    echo "obs-smoke: listener never came up" >&2; cat "$workdir/b.log" >&2; exit 1; }
admin_b="$(wait_line "$workdir/b.log" 'admin on')" || {
    echo "obs-smoke: segment b admin never came up" >&2; cat "$workdir/b.log" >&2; exit 1; }

"$workdir/canecd" -segment a -trace-base 1 -uplink "$addr" \
    -admin 127.0.0.1:0 -flight-dir "$workdir" \
    -forward srt:0x42 -publish srt:0x42:5:100ms -dur 60s -hb 100ms \
    > "$workdir/a.log" 2>&1 &
apid=$!

admin_a="$(wait_line "$workdir/a.log" 'admin on')" || {
    echo "obs-smoke: segment a admin never came up" >&2; cat "$workdir/a.log" >&2; exit 1; }

# Raw endpoint checks on both daemons while they run.
for admin in "$admin_a" "$admin_b"; do
    curl -fsS "http://$admin/healthz" > "$workdir/healthz.json"
    grep -q '"status": "ok"' "$workdir/healthz.json" || {
        echo "obs-smoke: $admin /healthz not ok" >&2; cat "$workdir/healthz.json" >&2; exit 1; }
    curl -fsS "http://$admin/slo" > "$workdir/slo.json"
    grep -q '"srt-miss-rate"' "$workdir/slo.json" || {
        echo "obs-smoke: $admin /slo missing srt-miss-rate objective" >&2; cat "$workdir/slo.json" >&2; exit 1; }
    curl -fsS "http://$admin/metrics" > "$workdir/metrics.txt"
    grep -q '^# TYPE canec_events_published_total counter' "$workdir/metrics.txt" || {
        echo "obs-smoke: $admin /metrics missing exposition" >&2; exit 1; }
done

# Fleet view: one canecstat poll over both daemons with strict
# exposition validation; exit 0 means reachable, healthy and valid.
"$workdir/canecstat" -once -validate-metrics "$admin_a" "$admin_b" > "$workdir/stat.out" || {
    echo "obs-smoke: canecstat reported an unhealthy fleet" >&2
    cat "$workdir/stat.out" "$workdir/a.log" "$workdir/b.log" >&2
    exit 1
}
grep -q 'UNREACHABLE\|INVALID' "$workdir/stat.out" && {
    echo "obs-smoke: canecstat table shows a bad target" >&2
    cat "$workdir/stat.out" >&2
    exit 1
}

# The federation itself must still meet its delivery expectation.
if ! wait "$bpid"; then
    echo "obs-smoke: segment b failed" >&2
    cat "$workdir/a.log" "$workdir/b.log" >&2
    exit 1
fi
wait "$apid" || true
grep -q "expect met" "$workdir/b.log" || {
    echo "obs-smoke: no expectation report in b's log" >&2
    cat "$workdir/b.log" >&2
    exit 1
}
echo "obs-smoke: OK"
cat "$workdir/stat.out"
